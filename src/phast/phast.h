#pragma once

#include <span>
#include <vector>

#include "ch/ch_data.h"
#include "graph/reorder.h"
#include "graph/types.h"
#include "obs/sweep_profile.h"
#include "phast/kernels.h"
#include "phast/options.h"
#include "pq/dary_heap.h"
#include "util/aligned.h"
#include "util/bit_vector.h"

namespace phast {

/// Every array a Phast engine holds after construction, in one movable
/// bundle. This is the serialization surface of the serving subsystem
/// (src/server/snapshot.*): a snapshot persists the *prepared* engine —
/// permutations, reordered G↓/G↑ CSR, level boundaries — so a server
/// process restarts with zero re-preprocessing. Phast::ExportLayout()
/// produces one; the Phast(PhastLayout) constructor validates and adopts
/// one (rejecting structurally inconsistent data with InputError).
struct PhastLayout {
  PhastOptions options;
  VertexId num_vertices = 0;
  uint32_t num_levels = 0;
  Permutation perm;      // original id -> label space
  Permutation inv_perm;  // label space -> original id
  /// Sweep position -> label-space id; empty for kLevelReordered (the
  /// sweep is then a pure ascending scan).
  std::vector<VertexId> order;
  std::vector<ArcId> down_first;   // n+1, keyed by sweep position
  std::vector<DownArc> down_arcs;  // grouped by sweep position
  std::vector<ArcId> up_first;     // n+1, label space
  std::vector<Arc> up_arcs;
  /// Level-group boundaries; empty for kRankDescending.
  std::vector<VertexId> level_begin;
};

/// Non-owning view of a prepared layout: the same arrays as PhastLayout but
/// as read-only spans over memory the caller keeps alive (typically a
/// PHSNAP02 file mapped by fabric::MappedSnapshot). Adopting a view copies
/// nothing — the engine serves straight out of the mapping, so N server
/// processes over one snapshot share one page-cache copy of the arrays.
struct PhastLayoutView {
  PhastOptions options;
  VertexId num_vertices = 0;
  uint32_t num_levels = 0;
  std::span<const VertexId> perm;      // original id -> label space
  std::span<const VertexId> inv_perm;  // label space -> original id
  /// Sweep position -> label-space id; empty for kLevelReordered.
  std::span<const VertexId> order;
  std::span<const ArcId> down_first;   // n+1, keyed by sweep position
  std::span<const DownArc> down_arcs;  // grouped by sweep position
  std::span<const ArcId> up_first;     // n+1, label space
  std::span<const Arc> up_arcs;
  std::span<const VertexId> level_begin;
};

/// How much of an adopted layout the Phast constructor re-checks.
///
/// kFull reads every array once (permutation bijectivity, CSR monotonicity,
/// arc endpoint ranges, level partition) — the right choice when the bytes
/// came from an unauthenticated stream. kShallow checks only sizes and
/// counts, touching no array *content*: it exists for the mmap cold-start
/// path, where reading the arrays would fault the whole file in and defeat
/// the O(TOC) start (integrity is then the snapshot checksums' job, on
/// whatever schedule the --verify knob chose).
enum class LayoutValidation { kFull, kShallow };

/// The PHAST engine (paper §III–§V): answers non-negative single-source
/// shortest path queries with one upward CH search plus one linear sweep
/// over the downward graph.
///
/// The engine itself is immutable after construction and can be shared by
/// any number of threads; all per-query state lives in a Workspace, so the
/// "one tree per core" parallelization (§V) is simply one workspace per
/// thread.
class Phast {
 public:
  using Options = PhastOptions;

  /// Per-query state: k distance labels per vertex (laid out k-strided as
  /// in §IV-B), visit marks for implicit initialization, optional parent
  /// pointers, and the upward-search scratch.
  class Workspace {
   public:
    [[nodiscard]] uint32_t NumTrees() const { return k_; }
    [[nodiscard]] bool WantsParents() const { return want_parents_; }

    /// Label-space vertices touched by the latest batch's upward searches
    /// (the union over the k sources). The paper quotes ~500 per source on
    /// Europe (§II-B).
    [[nodiscard]] size_t UpwardSearchSpace() const { return visited_.size(); }

    /// Per-level profile of the latest batch; populated only when the
    /// engine was built with Options::collect_profile (empty otherwise).
    [[nodiscard]] const obs::SweepProfile& Profile() const { return profile_; }

    /// Wall time of the latest batch's two phases. Always recorded (two
    /// clock reads per batch), so the server can export phase histograms
    /// without enabling full profiling.
    [[nodiscard]] uint64_t LastUpwardNanos() const { return last_upward_ns_; }
    [[nodiscard]] uint64_t LastSweepNanos() const { return last_sweep_ns_; }

   private:
    friend class Phast;
    Workspace(VertexId n, uint32_t k, bool want_parents, bool implicit_init,
              bool collect_profile);

    uint32_t k_;
    bool want_parents_;
    bool implicit_init_;
    bool collect_profile_;
    AlignedVector<Weight> labels_;    // n*k, k-strided
    std::vector<VertexId> parents_;   // n*k or empty
    BitVector marks_;                 // visit marks (implicit init only)
    std::vector<VertexId> visited_;   // marked vertices of current batch
    BinaryHeap heap_;                 // upward-search queue
    obs::SweepProfile profile_;       // latest batch (collect_profile only)
    uint64_t last_upward_ns_ = 0;
    uint64_t last_sweep_ns_ = 0;
  };

  Phast(const CHData& ch, const Options& options = {});

  /// Adopts a previously exported layout (snapshot loading). Validates the
  /// structural invariants — permutations are mutual inverses, CSR offset
  /// arrays are monotone and sized n+1, arc endpoints are in range, level
  /// boundaries partition [0, n) — and throws InputError otherwise, so a
  /// corrupted-but-checksum-consistent snapshot cannot build a broken
  /// engine.
  explicit Phast(PhastLayout layout);

  /// Adopts a layout *by reference*: the engine's arrays alias `view`'s
  /// spans, whose backing memory (typically an mmap-ed PHSNAP02 snapshot)
  /// must stay mapped and unmodified for the engine's lifetime. kFull runs
  /// the same structural validation as the owning constructor; kShallow
  /// checks only sizes, reading no array content — the O(TOC) cold-start
  /// path (see LayoutValidation).
  Phast(const PhastLayoutView& view, LayoutValidation validation);

  /// Copies the engine's arrays into a serializable bundle (the inverse of
  /// the PhastLayout constructor).
  [[nodiscard]] PhastLayout ExportLayout() const;

  /// The engine's arrays may alias external memory (view constructor) or
  /// live in storage_ with span members pointing into it (owning
  /// constructors) — copying would silently leave the copy's spans dangling
  /// into the original, so copies are deleted. Moves are safe: moving the
  /// storage vectors preserves their heap allocations, so spans bound to
  /// them stay valid.
  Phast(const Phast&) = delete;
  Phast& operator=(const Phast&) = delete;
  Phast(Phast&&) = default;
  Phast& operator=(Phast&&) = default;

  /// ExportLayout with the arc weights replaced by those of `customized` —
  /// the weight re-export half of metric customization (ch::CustomizeWeights
  /// recomputes CHData weights; this projects them into the engine's sweep
  /// layout). The hierarchy must have the engine's exact topology: same
  /// vertex count, same up/down arc sets in the same order (which
  /// customization guarantees, since it rewrites weights in place). The
  /// permutations, CSR offsets, arc targets, and level boundaries of the
  /// result are byte-identical to ExportLayout(); only the weight fields
  /// differ. Topology mismatches throw InputError.
  [[nodiscard]] PhastLayout ExportReweightedLayout(const CHData& customized)
      const;

  [[nodiscard]] Workspace MakeWorkspace(uint32_t num_trees = 1,
                                        bool want_parents = false) const;

  /// One shortest path tree from `source` (original vertex id). Workspace
  /// must have been created with num_trees == 1.
  void ComputeTree(VertexId source, Workspace& ws) const;

  /// k trees in one sweep (§IV-B); sources.size() must equal
  /// ws.NumTrees(). The sweep kernel is chosen by Options::simd.
  void ComputeTrees(std::span<const VertexId> sources, Workspace& ws) const;

  /// Single-batch computation with the sweep parallelized *within* each
  /// level across OpenMP threads (§V; the scheme GPHAST maps to GPU
  /// kernels). Requires a level-ordered sweep (order != kRankDescending).
  void ComputeTreesParallel(std::span<const VertexId> sources,
                            Workspace& ws) const;

  /// Phase one only, for external sweep executors (the GPU simulator):
  /// runs the k upward searches into the workspace and leaves the sweep to
  /// the caller (via MakeSweepArgs).
  void RunUpwardPhase(std::span<const VertexId> sources, Workspace& ws) const {
    PrepareBatch(sources, ws);
  }

  /// Clears visit marks after an externally executed sweep.
  void FinishExternalSweep(Workspace& ws) const { FinishBatch(ws); }

  /// Distance from the batch's tree `tree` source to original vertex v.
  [[nodiscard]] Weight Distance(const Workspace& ws, VertexId v,
                                uint32_t tree = 0) const {
    return ws.labels_[static_cast<size_t>(perm_[v]) * ws.k_ + tree];
  }

  /// Parent of v in the shortest path tree *in G+* (§VII-A): may be the
  /// far endpoint of a shortcut. kInvalidVertex for the source and for
  /// unreached vertices. Workspace must have want_parents.
  [[nodiscard]] VertexId ParentInGPlus(const Workspace& ws, VertexId v,
                                       uint32_t tree = 0) const;

  // --- topology accessors -------------------------------------------------

  [[nodiscard]] VertexId NumVertices() const { return n_; }
  [[nodiscard]] uint32_t NumLevels() const { return num_levels_; }

  /// Sweep positions where each level group starts; size NumLevels()+1,
  /// groups ordered by descending level. Empty for kRankDescending.
  [[nodiscard]] std::span<const VertexId> LevelBoundaries() const {
    return level_begin_;
  }

  [[nodiscard]] VertexId LabelIndexOf(VertexId original) const {
    return perm_[original];
  }
  [[nodiscard]] VertexId OriginalOf(VertexId label_index) const {
    return inv_perm_[label_index];
  }

  [[nodiscard]] const Options& GetOptions() const { return options_; }

  /// Which sweep kernel ComputeTrees would run for batches of k trees.
  [[nodiscard]] const char* KernelNameFor(uint32_t k) const {
    return SweepKernelName(options_.simd, k);
  }

  /// Raw sweep topology (for the GPU simulator and the lower-bound
  /// benchmark). Pointers remain valid for the engine's lifetime.
  [[nodiscard]] SweepArgs MakeSweepArgs(Workspace& ws) const;

  /// Raw per-label views in label space (for applications that post-process
  /// whole trees without per-vertex accessor overhead).
  [[nodiscard]] std::span<const Weight> RawLabels(const Workspace& ws) const {
    return ws.labels_;
  }

  /// Label-space vertices touched by the current batch's upward searches
  /// (valid between RunUpwardPhase and FinishExternalSweep; RPHAST gathers
  /// upward labels from it).
  [[nodiscard]] std::span<const VertexId> VisitedLabelVertices(
      const Workspace& ws) const {
    return ws.visited_;
  }
  [[nodiscard]] std::span<const VertexId> RawParents(
      const Workspace& ws) const {
    return ws.parents_;
  }

 private:
  void PrepareBatch(std::span<const VertexId> sources, Workspace& ws) const;
  void FinishBatch(Workspace& ws) const;
  void UpwardSearch(VertexId source_label, uint32_t tree, Workspace& ws) const;
  /// Sweep run level group by level group with a per-level timer, filling
  /// ws.profile_ (the Options::collect_profile path).
  void ProfiledSweep(SweepKernelFn kernel, Workspace& ws) const;

  /// Points the span members at storage_'s vectors. Must be re-run after
  /// any move of storage_ (the constructors' job; Phast itself is movable
  /// afterwards because vector moves keep the heap allocations alive).
  void BindToStorage();
  /// Checks the structural invariants of whatever the spans currently
  /// reference (shared by the owning and kFull-view constructors).
  void ValidateFull() const;
  /// Size/count consistency only; reads no array content.
  void ValidateShallow() const;

  Options options_;
  VertexId n_ = 0;
  uint32_t num_levels_ = 0;

  /// Owned backing for the span members below. The view constructor leaves
  /// it empty and the spans alias caller-owned memory (an mmap-ed
  /// snapshot); the owning constructors fill it and bind the spans to it.
  PhastLayout storage_;

  std::span<const VertexId> perm_;      // original id -> label space
  std::span<const VertexId> inv_perm_;  // label space -> original id

  /// Sweep position -> label-space id; empty when they coincide (the
  /// reordered layout, where the sweep is a pure ascending scan).
  std::span<const VertexId> order_;

  // Downward graph: incoming arcs grouped by sweep position (§IV-A).
  std::span<const ArcId> down_first_;
  std::span<const DownArc> down_arcs_;

  // Upward graph: outgoing arcs in label space, for phase one.
  std::span<const ArcId> up_first_;
  std::span<const Arc> up_arcs_;

  std::span<const VertexId> level_begin_;
};

}  // namespace phast

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/types.h"
#include "phast/phast.h"
#include "util/error.h"
#include "util/omp_env.h"

namespace phast {

/// How a many-tree computation is spread over the machine.
struct BatchOptions {
  /// Trees per linear sweep (the k of §IV-B). 1 disables multi-tree mode.
  uint32_t trees_per_sweep = 1;
  /// Parents in G+ tracked per tree (needed by arc flags, reach, ...).
  bool want_parents = false;
};

/// Computes one tree from every source, assigning batches of k sources to
/// OpenMP threads ("one tree per core", §V). The visitor runs in the owning
/// thread right after its batch's sweep:
///
///   visit(source_index, workspace, slot)
///
/// where sources[source_index] occupies tree `slot` of `workspace`. Visitors
/// must not touch other threads' state; aggregate afterwards.
///
/// When the source count is not a multiple of k, the final short batch is
/// padded by repeating its last source; the visitor never sees the padding.
template <typename Visitor>
void ComputeManyTrees(const Phast& engine, std::span<const VertexId> sources,
                      const BatchOptions& options, Visitor&& visit) {
  const uint32_t k = options.trees_per_sweep;
  Require(k >= 1, "ComputeManyTrees needs trees_per_sweep >= 1");
  if (sources.empty()) return;
  const int64_t num_batches =
      static_cast<int64_t>((sources.size() + k - 1) / k);

  // Exceptions may not escape an OpenMP parallel region (std::terminate);
  // the guard captures the first one — from workspace allocation, the
  // engine, or the visitor — and rethrows it after the team joins. It is
  // the only state the threads share mutably.
  OmpExceptionGuard guard;
#pragma omp parallel default(none) \
    shared(engine, sources, options, visit, guard, num_batches) \
    firstprivate(k)
  {
    // Workspace construction can throw (allocation); it must still be
    // guarded, and the worksharing loop below must be encountered by every
    // thread, so the workspace lives in an optional and a failed thread
    // runs the loop as a no-op while the guard cancels the other threads.
    std::optional<Phast::Workspace> ws;
    std::vector<VertexId> batch;
    guard.Run([&] {
      ws.emplace(engine.MakeWorkspace(k, options.want_parents));
      batch.resize(k);
    });
#pragma omp for schedule(dynamic, 1)
    for (int64_t b = 0; b < num_batches; ++b) {
      guard.Run([&] {
        if (!ws) return;
        const size_t begin = static_cast<size_t>(b) * k;
        const size_t live = std::min<size_t>(k, sources.size() - begin);
        for (uint32_t i = 0; i < k; ++i) {
          batch[i] = sources[begin + std::min<size_t>(i, live - 1)];
        }
        engine.ComputeTrees(batch, *ws);
        for (uint32_t i = 0; i < live; ++i) {
          visit(begin + i, *ws, i);
        }
      });
    }
  }
  guard.Rethrow();
}

}  // namespace phast

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/types.h"
#include "obs/trace.h"
#include "phast/phast.h"
#include "util/error.h"
#include "util/omp_env.h"

namespace phast {

/// How a many-tree computation is spread over the machine.
struct BatchOptions {
  /// Trees per linear sweep (the k of §IV-B). 1 disables multi-tree mode.
  uint32_t trees_per_sweep = 1;
  /// Parents in G+ tracked per tree (needed by arc flags, reach, ...).
  bool want_parents = false;
};

/// What ComputeManyTrees actually executed; serving-layer schedulers and
/// the duplicate-coalescing regression tests assert on it.
struct BatchStats {
  /// Sweeps run (== workspaces' ComputeTrees invocations).
  uint64_t num_batches = 0;
  /// Source indices that shared a lane with an earlier duplicate in their
  /// batch instead of occupying one themselves.
  uint64_t duplicates_coalesced = 0;
};

/// Computes one tree from every source, assigning batches of up to k
/// *distinct* sources to OpenMP threads ("one tree per core", §V). The
/// visitor runs in the owning thread right after its batch's sweep:
///
///   visit(source_index, workspace, slot)
///
/// where sources[source_index] occupies tree `slot` of `workspace`.
/// Visitors must not touch other threads' state; aggregate afterwards.
///
/// Duplicate sources are coalesced: within a batch, repeats of a source
/// share the lane of its first occurrence (each source *index* is still
/// visited exactly once, duplicates may just receive the same slot), so a
/// workload with repeated sources fills its k SIMD lanes with distinct
/// trees instead of wasting lanes recomputing identical ones. Batches stay
/// contiguous index ranges: a batch closes when the next new source would
/// need a (k+1)-th lane. Lanes left over in the final batch are padded by
/// repeating the last distinct source; the visitor never sees the padding.
template <typename Visitor>
BatchStats ComputeManyTrees(const Phast& engine,
                            std::span<const VertexId> sources,
                            const BatchOptions& options, Visitor&& visit) {
  const uint32_t k = options.trees_per_sweep;
  Require(k >= 1, "ComputeManyTrees needs trees_per_sweep >= 1");
  BatchStats stats;
  if (sources.empty()) return stats;
  // One span over the whole many-tree drive; the per-batch phast.batch
  // spans land in the OpenMP workers' own thread buffers.
  PHAST_SPAN_ARG("phast.many_trees", sources.size());

  // Pre-pass (serial, O(total sources * k)): pack contiguous source ranges
  // into batches of at most k distinct sources, recording each index's
  // lane. The linear duplicate scan is over at most k live lanes.
  std::vector<size_t> batch_begin{0};      // index ranges, size num_batches+1
  std::vector<uint32_t> lane_of(sources.size());
  std::vector<VertexId> lane_sources;      // flat, batch b at [b*k, b*k+k)
  std::vector<uint32_t> lanes_used;        // distinct sources per batch
  uint32_t used = 0;
  lane_sources.resize(k);
  for (size_t i = 0; i < sources.size(); ++i) {
    const VertexId s = sources[i];
    uint32_t lane = used;
    for (uint32_t l = 0; l < used; ++l) {
      const size_t flat = (batch_begin.size() - 1) * k + l;
      if (lane_sources[flat] == s) {
        lane = l;
        break;
      }
    }
    if (lane == used && used == k) {
      // Batch is full of distinct sources; close it and start the next.
      lanes_used.push_back(used);
      batch_begin.push_back(i);
      lane_sources.resize(batch_begin.size() * k);
      used = 0;
      lane = 0;
    }
    if (lane == used) {
      lane_sources[(batch_begin.size() - 1) * k + used] = s;
      ++used;
    } else {
      ++stats.duplicates_coalesced;
    }
    lane_of[i] = lane;
  }
  lanes_used.push_back(used);
  batch_begin.push_back(sources.size());
  // Pad unused lanes of every batch (only the last can have any when the
  // sources carry no duplicates) by repeating the batch's last source.
  for (size_t b = 0; b + 1 < batch_begin.size(); ++b) {
    for (uint32_t l = lanes_used[b]; l < k; ++l) {
      lane_sources[b * k + l] = lane_sources[b * k + lanes_used[b] - 1];
    }
  }
  const int64_t num_batches = static_cast<int64_t>(batch_begin.size()) - 1;
  stats.num_batches = static_cast<uint64_t>(num_batches);

  // Exceptions may not escape an OpenMP parallel region (std::terminate);
  // the guard captures the first one — from workspace allocation, the
  // engine, or the visitor — and rethrows it after the team joins. It is
  // the only state the threads share mutably.
  OmpExceptionGuard guard;
#pragma omp parallel default(none) \
    shared(engine, sources, options, visit, guard, num_batches, batch_begin, \
           lane_of, lane_sources) \
    firstprivate(k)
  {
    // Workspace construction can throw (allocation); it must still be
    // guarded, and the worksharing loop below must be encountered by every
    // thread, so the workspace lives in an optional and a failed thread
    // runs the loop as a no-op while the guard cancels the other threads.
    std::optional<Phast::Workspace> ws;
    guard.Run([&] {
      ws.emplace(engine.MakeWorkspace(k, options.want_parents));
    });
#pragma omp for schedule(dynamic, 1)
    for (int64_t b = 0; b < num_batches; ++b) {
      guard.Run([&] {
        if (!ws) return;
        engine.ComputeTrees(
            {lane_sources.data() + static_cast<size_t>(b) * k, k}, *ws);
        for (size_t i = batch_begin[b]; i < batch_begin[b + 1]; ++i) {
          visit(i, *ws, lane_of[i]);
        }
      });
    }
  }
  guard.Rethrow();
  return stats;
}

}  // namespace phast

#pragma once

#include <span>
#include <vector>

#include "graph/types.h"
#include "phast/phast.h"
#include "util/aligned.h"

namespace phast {

/// RPHAST — restricted PHAST for one-to-many queries (the follow-up work
/// the paper's applications motivate: Delling, Goldberg, Werneck, "Faster
/// Batched Shortest Paths in Road Networks", ATMOS 2011).
///
/// When only distances to a fixed target set T are needed, the linear sweep
/// can be restricted to the vertices that can reach T in the downward graph
/// — typically a small fraction of n for localized targets. Restriction is
/// a one-time cost per target set (one backward pass over the downward
/// arcs); each subsequent source costs one upward CH search plus a sweep
/// over the *restricted* arrays, which are compacted for the same
/// sequential locality as the full §IV-A layout.
class RPhast {
 public:
  /// Builds the restriction for `targets` (original vertex ids). The engine
  /// must be level-ordered with implicit initialization (the defaults).
  RPhast(const Phast& engine, std::span<const VertexId> targets);

  /// Per-source state: restricted labels plus a full-graph workspace for
  /// the (unrestricted) upward search.
  class Workspace {
   public:
    explicit Workspace(const Phast& engine, size_t restricted_size)
        : full(engine.MakeWorkspace(1)),
          labels(restricted_size, kInfWeight) {}

   private:
    friend class RPhast;
    Phast::Workspace full;
    AlignedVector<Weight> labels;  // indexed by restricted position
  };

  [[nodiscard]] Workspace MakeWorkspace() const {
    return Workspace(engine_, order_.size());
  }

  /// Computes distances from `source` to every vertex of the restricted
  /// subgraph (in particular to all targets).
  void ComputeTree(VertexId source, Workspace& ws) const;

  /// Distance to targets[target_index] after ComputeTree.
  [[nodiscard]] Weight DistanceToTarget(const Workspace& ws,
                                        size_t target_index) const {
    return ws.labels[target_slot_[target_index]];
  }

  [[nodiscard]] size_t NumTargets() const { return target_slot_.size(); }

  /// Size of the restricted sweep — the quantity RPHAST exists to shrink.
  [[nodiscard]] size_t RestrictedVertices() const { return order_.size(); }
  [[nodiscard]] size_t RestrictedArcs() const { return arcs_.size(); }

 private:
  struct RestrictedArc {
    uint32_t tail;  // restricted position of the tail
    Weight weight;
  };

  const Phast& engine_;
  /// Restricted position -> label-space vertex id (ascending sweep order).
  std::vector<VertexId> order_;
  /// Label-space vertex id -> restricted position (kNotRestricted if cut).
  std::vector<uint32_t> position_of_;
  std::vector<ArcId> first_;
  std::vector<RestrictedArc> arcs_;
  std::vector<uint32_t> target_slot_;  // target index -> restricted position

  static constexpr uint32_t kNotRestricted =
      std::numeric_limits<uint32_t>::max();
};

}  // namespace phast

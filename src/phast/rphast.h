#pragma once

#include <span>
#include <vector>

#include "graph/types.h"
#include "phast/phast.h"
#include "util/aligned.h"

namespace phast {

/// RPHAST — restricted PHAST for one-to-many queries (the follow-up work
/// the paper's applications motivate: Delling, Goldberg, Werneck, "Faster
/// Batched Shortest Paths in Road Networks", ATMOS 2011).
///
/// When only distances to a fixed target set T are needed, the linear sweep
/// can be restricted to the vertices that can reach T in the downward graph
/// — typically a small fraction of n for localized targets. Restriction is
/// a one-time cost per target set (one backward pass over the downward
/// arcs); each subsequent source costs one upward CH search plus a sweep
/// over the *restricted* arrays, which are compacted for the same
/// sequential locality as the full §IV-A layout.
class RPhast {
 public:
  /// Builds the restriction for `targets` (original vertex ids). The engine
  /// must be level-ordered with implicit initialization (the defaults).
  RPhast(const Phast& engine, std::span<const VertexId> targets);

  /// Per-source state: restricted labels plus a full-graph workspace for
  /// the (unrestricted) upward search.
  class Workspace {
   public:
    explicit Workspace(const Phast& engine, size_t restricted_size)
        : full(engine.MakeWorkspace(1)),
          labels(restricted_size, kInfWeight) {}

   private:
    friend class RPhast;
    Phast::Workspace full;
    AlignedVector<Weight> labels;  // indexed by restricted position
  };

  [[nodiscard]] Workspace MakeWorkspace() const {
    return Workspace(engine_, order_.size());
  }

  /// Per-batch state for k-wide restricted sweeps: a k-tree full workspace
  /// for the upward searches plus k-strided restricted labels
  /// (labels[slot * k + tree], same stride convention as the full engine).
  class BatchWorkspace {
   public:
    BatchWorkspace(const Phast& engine, size_t restricted_size, uint32_t k)
        : k_(k),
          full(engine.MakeWorkspace(k)),
          labels(restricted_size * k, kInfWeight) {}

    [[nodiscard]] uint32_t NumTrees() const { return k_; }

   private:
    friend class RPhast;
    uint32_t k_;
    Phast::Workspace full;
    AlignedVector<Weight> labels;  // restricted position * k + tree
  };

  [[nodiscard]] BatchWorkspace MakeBatchWorkspace(uint32_t k) const {
    return BatchWorkspace(engine_, order_.size(), k);
  }

  /// Computes distances from `source` to every vertex of the restricted
  /// subgraph (in particular to all targets).
  void ComputeTree(VertexId source, Workspace& ws) const;

  /// Computes sources.size() trees in one pass: a batched upward search
  /// followed by a single k-strided sweep over the restricted arrays. The
  /// restricted topology is a valid SweepArgs graph of its own, so the
  /// engine's SIMD kernels run unchanged here (SSE for k % 4 == 0, AVX2
  /// for k % 8 == 0); results are bit-identical to per-source ComputeTree.
  /// sources.size() must equal ws.NumTrees().
  void ComputeTrees(std::span<const VertexId> sources,
                    BatchWorkspace& ws) const;

  /// Distance to targets[target_index] after ComputeTree.
  [[nodiscard]] Weight DistanceToTarget(const Workspace& ws,
                                        size_t target_index) const {
    return ws.labels[target_slot_[target_index]];
  }

  /// Distance from sources[tree] to targets[target_index] after ComputeTrees.
  [[nodiscard]] Weight DistanceToTarget(const BatchWorkspace& ws,
                                        size_t target_index,
                                        uint32_t tree) const {
    return ws.labels[static_cast<size_t>(target_slot_[target_index]) * ws.k_ +
                     tree];
  }

  [[nodiscard]] size_t NumTargets() const { return target_slot_.size(); }

  /// Size of the restricted sweep — the quantity RPHAST exists to shrink.
  [[nodiscard]] size_t RestrictedVertices() const { return order_.size(); }
  [[nodiscard]] size_t RestrictedArcs() const { return arcs_.size(); }

  /// One compacted downward arc of the restricted subgraph. Public only so
  /// the implementation can static_assert layout compatibility with DownArc
  /// (the k-wide sweep feeds these arrays to the shared SIMD kernels).
  struct RestrictedArc {
    uint32_t tail;  // restricted position of the tail
    Weight weight;
  };

 private:
  const Phast& engine_;
  /// Restricted position -> label-space vertex id (ascending sweep order).
  std::vector<VertexId> order_;
  /// Label-space vertex id -> restricted position (kNotRestricted if cut).
  std::vector<uint32_t> position_of_;
  std::vector<ArcId> first_;
  std::vector<RestrictedArc> arcs_;
  std::vector<uint32_t> target_slot_;  // target index -> restricted position

  static constexpr uint32_t kNotRestricted =
      std::numeric_limits<uint32_t>::max();
};

}  // namespace phast

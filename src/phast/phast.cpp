#include "phast/phast.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "obs/trace.h"
#include "util/error.h"
#include "util/omp_env.h"
#include "util/timer.h"

namespace phast {
namespace {

/// Elapsed nanoseconds of a Timer as the integer the profile structs carry.
uint64_t ElapsedNanos(const Timer& timer) {
  return static_cast<uint64_t>(timer.ElapsedSec() * 1e9);
}

/// Sweep sequence (position -> original id) for the requested order.
std::vector<VertexId> BuildSweepSequence(const CHData& ch, SweepOrder order) {
  std::vector<VertexId> seq(ch.num_vertices);
  std::iota(seq.begin(), seq.end(), VertexId{0});
  if (order == SweepOrder::kRankDescending) {
    std::sort(seq.begin(), seq.end(), [&ch](VertexId a, VertexId b) {
      return ch.rank[a] > ch.rank[b];
    });
  } else {
    // Descending level; stable keeps ascending input id within a level
    // (callers feed a DFS-relabeled graph to get the paper's tie-break).
    std::stable_sort(seq.begin(), seq.end(), [&ch](VertexId a, VertexId b) {
      return ch.level[a] > ch.level[b];
    });
  }
  return seq;
}

}  // namespace

Phast::Workspace::Workspace(VertexId n, uint32_t k, bool want_parents,
                            bool implicit_init, bool collect_profile)
    : k_(k),
      want_parents_(want_parents),
      implicit_init_(implicit_init),
      collect_profile_(collect_profile),
      labels_(static_cast<size_t>(n) * k, kInfWeight),
      heap_(n) {
  if (want_parents_) {
    parents_.assign(static_cast<size_t>(n) * k, kInvalidVertex);
  }
  if (implicit_init_) {
    marks_.Resize(n);
  }
}

Phast::Phast(const CHData& ch, const Options& options)
    : options_(options), n_(ch.num_vertices), num_levels_(ch.NumLevels()) {
  Require(n_ > 0, "PHAST needs a non-empty hierarchy");
  Require(ch.rank.size() == n_ && ch.level.size() == n_,
          "CHData arrays have inconsistent sizes");

  const std::vector<VertexId> sequence = BuildSweepSequence(ch, options_.order);

  if (options_.order == SweepOrder::kLevelReordered) {
    // Physically relabel: label space == sweep position space.
    storage_.perm.assign(n_, 0);
    for (VertexId pos = 0; pos < n_; ++pos) storage_.perm[sequence[pos]] = pos;
    storage_.inv_perm = sequence;
    storage_.order.clear();  // identity
  } else {
    storage_.perm = IdentityPermutation(n_);
    storage_.inv_perm = storage_.perm;
    storage_.order = sequence;
  }
  const Permutation& perm = storage_.perm;

  // position_of[original id] — needed to group downward arcs by the sweep
  // position of their head.
  std::vector<VertexId> position_of(n_);
  for (VertexId pos = 0; pos < n_; ++pos) position_of[sequence[pos]] = pos;

  // Downward graph: incoming arcs of each head, grouped by sweep position,
  // tails stored in label space (§IV-A data layout).
  std::vector<ArcId>& down_first = storage_.down_first;
  down_first.assign(static_cast<size_t>(n_) + 1, 0);
  for (const CHArc& a : ch.down_arcs) ++down_first[position_of[a.head] + 1];
  for (size_t i = 1; i <= n_; ++i) down_first[i] += down_first[i - 1];
  storage_.down_arcs.resize(ch.down_arcs.size());
  {
    std::vector<ArcId> cursor(down_first.begin(), down_first.end() - 1);
    for (const CHArc& a : ch.down_arcs) {
      storage_.down_arcs[cursor[position_of[a.head]]++] =
          DownArc{perm[a.tail], a.weight};
    }
  }

  // Upward graph in label space, for the forward CH search.
  std::vector<ArcId>& up_first = storage_.up_first;
  up_first.assign(static_cast<size_t>(n_) + 1, 0);
  for (const CHArc& a : ch.up_arcs) ++up_first[perm[a.tail] + 1];
  for (size_t i = 1; i <= n_; ++i) up_first[i] += up_first[i - 1];
  storage_.up_arcs.resize(ch.up_arcs.size());
  {
    std::vector<ArcId> cursor(up_first.begin(), up_first.end() - 1);
    for (const CHArc& a : ch.up_arcs) {
      storage_.up_arcs[cursor[perm[a.tail]]++] = Arc{perm[a.head], a.weight};
    }
  }

  // Level group boundaries in sweep positions (levels descending).
  if (options_.order != SweepOrder::kRankDescending) {
    storage_.level_begin.assign(static_cast<size_t>(num_levels_) + 1, 0);
    for (VertexId pos = 0; pos < n_; ++pos) {
      // Group index of level L is (num_levels_ - 1 - L).
      const uint32_t group = num_levels_ - 1 - ch.level[sequence[pos]];
      ++storage_.level_begin[group + 1];
    }
    for (size_t i = 1; i <= num_levels_; ++i) {
      storage_.level_begin[i] += storage_.level_begin[i - 1];
    }
  }
  BindToStorage();
}

void Phast::BindToStorage() {
  perm_ = storage_.perm;
  inv_perm_ = storage_.inv_perm;
  order_ = storage_.order;
  down_first_ = storage_.down_first;
  down_arcs_ = storage_.down_arcs;
  up_first_ = storage_.up_first;
  up_arcs_ = storage_.up_arcs;
  level_begin_ = storage_.level_begin;
}

namespace {

/// Shared validation for a CSR offset array: size n+1, monotone, sentinel
/// equal to the arc count.
void RequireCsrOffsets(std::span<const ArcId> first, VertexId n,
                       size_t num_arcs, const char* what) {
  Require(first.size() == static_cast<size_t>(n) + 1,
          std::string(what) + " offset array must have n+1 entries");
  Require(first.front() == 0 && first.back() == num_arcs,
          std::string(what) + " offset array must start at 0 and end at the "
                              "arc count");
  for (size_t i = 0; i + 1 < first.size(); ++i) {
    Require(first[i] <= first[i + 1],
            std::string(what) + " offset array must be non-decreasing");
  }
}

}  // namespace

Phast::Phast(PhastLayout layout)
    : options_(layout.options),
      n_(layout.num_vertices),
      num_levels_(layout.num_levels),
      storage_(std::move(layout)) {
  BindToStorage();
  ValidateShallow();
  ValidateFull();
}

Phast::Phast(const PhastLayoutView& view, LayoutValidation validation)
    : options_(view.options),
      n_(view.num_vertices),
      num_levels_(view.num_levels),
      perm_(view.perm),
      inv_perm_(view.inv_perm),
      order_(view.order),
      down_first_(view.down_first),
      down_arcs_(view.down_arcs),
      up_first_(view.up_first),
      up_arcs_(view.up_arcs),
      level_begin_(view.level_begin) {
  ValidateShallow();
  if (validation == LayoutValidation::kFull) ValidateFull();
}

void Phast::ValidateShallow() const {
  Require(n_ > 0, "PHAST layout needs at least one vertex");
  Require(perm_.size() == n_, "PHAST layout perm has wrong size");
  Require(inv_perm_.size() == n_, "PHAST layout inv_perm has wrong size");
  if (options_.order == SweepOrder::kLevelReordered) {
    Require(order_.empty(),
            "PHAST layout: reordered engines sweep in label order and must "
            "not carry an order array");
  } else {
    Require(order_.size() == n_, "PHAST layout order has wrong size");
  }
  Require(down_first_.size() == static_cast<size_t>(n_) + 1,
          "PHAST layout G-down offset array must have n+1 entries");
  Require(up_first_.size() == static_cast<size_t>(n_) + 1,
          "PHAST layout G-up offset array must have n+1 entries");
  if (options_.order == SweepOrder::kRankDescending) {
    Require(level_begin_.empty(),
            "PHAST layout: rank-descending engines have no level groups");
  } else {
    Require(level_begin_.size() == static_cast<size_t>(num_levels_) + 1,
            "PHAST layout level boundaries must have num_levels+1 entries");
  }
}

void Phast::ValidateFull() const {
  Require(IsPermutation(perm_),
          "PHAST layout perm is not a permutation of [0, n)");
  for (VertexId v = 0; v < n_; ++v) {
    Require(inv_perm_[perm_[v]] == v,
            "PHAST layout perm/inv_perm are not mutual inverses");
  }
  if (options_.order != SweepOrder::kLevelReordered) {
    Require(IsPermutation(order_),
            "PHAST layout order is not a permutation of [0, n)");
  }
  RequireCsrOffsets(down_first_, n_, down_arcs_.size(), "PHAST layout G-down");
  RequireCsrOffsets(up_first_, n_, up_arcs_.size(), "PHAST layout G-up");
  for (const DownArc& a : down_arcs_) {
    Require(a.tail < n_, "PHAST layout downward arc tail out of range");
  }
  for (const Arc& a : up_arcs_) {
    Require(a.other < n_, "PHAST layout upward arc head out of range");
  }
  if (options_.order != SweepOrder::kRankDescending) {
    Require(level_begin_.front() == 0 && level_begin_.back() == n_,
            "PHAST layout level boundaries must span [0, n)");
    for (size_t i = 0; i + 1 < level_begin_.size(); ++i) {
      Require(level_begin_[i] <= level_begin_[i + 1],
              "PHAST layout level boundaries must be non-decreasing");
    }
  }
}

PhastLayout Phast::ExportLayout() const {
  PhastLayout layout;
  layout.options = options_;
  layout.num_vertices = n_;
  layout.num_levels = num_levels_;
  layout.perm.assign(perm_.begin(), perm_.end());
  layout.inv_perm.assign(inv_perm_.begin(), inv_perm_.end());
  layout.order.assign(order_.begin(), order_.end());
  layout.down_first.assign(down_first_.begin(), down_first_.end());
  layout.down_arcs.assign(down_arcs_.begin(), down_arcs_.end());
  layout.up_first.assign(up_first_.begin(), up_first_.end());
  layout.up_arcs.assign(up_arcs_.begin(), up_arcs_.end());
  layout.level_begin.assign(level_begin_.begin(), level_begin_.end());
  return layout;
}

PhastLayout Phast::ExportReweightedLayout(const CHData& customized) const {
  PHAST_SPAN("phast.export_reweighted");
  Require(customized.num_vertices == n_,
          "reweighted export: hierarchy vertex count differs from the engine");
  Require(customized.down_arcs.size() == down_arcs_.size() &&
              customized.up_arcs.size() == up_arcs_.size(),
          "reweighted export: hierarchy arc counts differ from the engine");

  PhastLayout layout = ExportLayout();

  // position_of[original id] — same mapping the constructor derived from the
  // sweep sequence: for the reordered layout it *is* perm_, otherwise the
  // inverse of order_ (label space there is the identity).
  std::vector<VertexId> position_of;
  std::span<const VertexId> positions = perm_;
  if (options_.order != SweepOrder::kLevelReordered) {
    position_of.assign(n_, 0);
    for (VertexId pos = 0; pos < n_; ++pos) position_of[order_[pos]] = pos;
    positions = position_of;
  }

  // Replay the constructor's cursor fills over the customized arc lists,
  // writing only the weight fields. Each slot's stored endpoint must match
  // the arc being replayed — any divergence means the hierarchy's topology
  // is not the one this engine was built from.
  {
    std::vector<ArcId> cursor(down_first_.begin(), down_first_.end() - 1);
    for (const CHArc& a : customized.down_arcs) {
      Require(a.head < n_ && a.tail < n_,
              "reweighted export: downward arc endpoint out of range");
      const ArcId slot = cursor[positions[a.head]]++;
      Require(layout.down_arcs[slot].tail == perm_[a.tail],
              "reweighted export: downward arc topology differs from the "
              "engine");
      layout.down_arcs[slot].weight = a.weight;
    }
  }
  {
    std::vector<ArcId> cursor(up_first_.begin(), up_first_.end() - 1);
    for (const CHArc& a : customized.up_arcs) {
      Require(a.tail < n_ && a.head < n_,
              "reweighted export: upward arc endpoint out of range");
      const ArcId slot = cursor[perm_[a.tail]]++;
      Require(layout.up_arcs[slot].other == perm_[a.head],
              "reweighted export: upward arc topology differs from the "
              "engine");
      layout.up_arcs[slot].weight = a.weight;
    }
  }
  return layout;
}

Phast::Workspace Phast::MakeWorkspace(uint32_t num_trees,
                                      bool want_parents) const {
  Require(num_trees >= 1, "need at least one tree per sweep");
  Require(!options_.collect_profile || !level_begin_.empty(),
          "sweep profiling requires a level-ordered engine");
  return Workspace(n_, num_trees, want_parents, options_.implicit_init,
                   options_.collect_profile);
}

SweepArgs Phast::MakeSweepArgs(Workspace& ws) const {
  SweepArgs args;
  args.down_first = down_first_.data();
  args.down_arcs = down_arcs_.data();
  args.order = order_.empty() ? nullptr : order_.data();
  args.num_vertices = n_;
  args.k = ws.k_;
  args.labels = ws.labels_.data();
  args.marks = ws.implicit_init_ ? ws.marks_.Words() : nullptr;
  args.parents = ws.want_parents_ ? ws.parents_.data() : nullptr;
  return args;
}

void Phast::PrepareBatch(std::span<const VertexId> sources,
                         Workspace& ws) const {
  Require(sources.size() == ws.k_,
          "source count must equal the workspace tree count");
  for (const VertexId s : sources) {
    Require(s < n_, "PHAST source out of range");
  }
  if (!ws.implicit_init_) {
    std::fill(ws.labels_.begin(), ws.labels_.end(), kInfWeight);
    if (ws.want_parents_) {
      std::fill(ws.parents_.begin(), ws.parents_.end(), kInvalidVertex);
    }
  }
  if (ws.collect_profile_) {
    ws.profile_ = obs::SweepProfile{};
    ws.profile_.k = ws.k_;
  }
  ws.visited_.clear();
  for (uint32_t i = 0; i < ws.k_; ++i) {
    UpwardSearch(perm_[sources[i]], i, ws);
  }
}

void Phast::FinishBatch(Workspace& ws) const {
  // Clear visit marks for the next batch (§IV-C: "after scanning v we
  // unmark the vertex"); clearing from the recorded visit list keeps the
  // sweep kernels read-only on the mark words, which lets the per-level
  // parallel sweep share them without atomics.
  if (ws.implicit_init_) {
    for (const VertexId v : ws.visited_) ws.marks_.Clear(v);
  }
}

void Phast::UpwardSearch(VertexId source_label, uint32_t tree,
                         Workspace& ws) const {
  const uint32_t k = ws.k_;
  const auto touch = [&](VertexId v) {
    if (!ws.implicit_init_ || ws.marks_.Get(v)) return;
    ws.marks_.Set(v);
    ws.visited_.push_back(v);
    Weight* labels = ws.labels_.data() + static_cast<size_t>(v) * k;
    std::fill(labels, labels + k, kInfWeight);
    if (ws.want_parents_) {
      VertexId* parents = ws.parents_.data() + static_cast<size_t>(v) * k;
      std::fill(parents, parents + k, kInvalidVertex);
    }
  };

  ws.heap_.Clear();
  touch(source_label);
  ws.labels_[static_cast<size_t>(source_label) * k + tree] = 0;
  if (ws.want_parents_) {
    ws.parents_[static_cast<size_t>(source_label) * k + tree] = kInvalidVertex;
  }
  ws.heap_.Update(source_label, 0);

  uint64_t pops = 0;
  uint64_t relaxed = 0;
  while (!ws.heap_.Empty()) {
    const auto [v, key] = ws.heap_.ExtractMin();
    ++pops;
    const ArcId end = up_first_[v + 1];
    for (ArcId i = up_first_[v]; i < end; ++i) {
      const Arc& arc = up_arcs_[i];
      ++relaxed;
      const Weight candidate = SaturatingAdd(key, arc.weight);
      touch(arc.other);
      Weight& label = ws.labels_[static_cast<size_t>(arc.other) * k + tree];
      if (candidate < label) {
        label = candidate;
        if (ws.want_parents_) {
          ws.parents_[static_cast<size_t>(arc.other) * k + tree] = v;
        }
        ws.heap_.Update(arc.other, candidate);
      }
    }
  }
  if (ws.collect_profile_) {
    ws.profile_.upward.queue_pops += pops;
    ws.profile_.upward.arcs_relaxed += relaxed;
  }
}

void Phast::ComputeTree(VertexId source, Workspace& ws) const {
  ComputeTrees({&source, 1}, ws);
}

void Phast::ComputeTrees(std::span<const VertexId> sources,
                         Workspace& ws) const {
  PHAST_SPAN_ARG("phast.batch", ws.k_);
  Timer phase;
  {
    PHAST_SPAN("phast.upward");
    PrepareBatch(sources, ws);
  }
  ws.last_upward_ns_ = ElapsedNanos(phase);
  const SweepKernelFn kernel = SelectSweepKernel(
      options_.simd, ws.k_, ws.want_parents_, ws.implicit_init_);
  phase.Reset();
  if (ws.collect_profile_) {
    ProfiledSweep(kernel, ws);
  } else {
    PHAST_SPAN("phast.sweep");
    kernel(MakeSweepArgs(ws), 0, n_);
  }
  ws.last_sweep_ns_ = ElapsedNanos(phase);
  if (ws.collect_profile_) {
    ws.profile_.upward.nanos = ws.last_upward_ns_;
    ws.profile_.sweep_nanos = ws.last_sweep_ns_;
  }
  FinishBatch(ws);
}

void Phast::ProfiledSweep(SweepKernelFn kernel, Workspace& ws) const {
  // MakeWorkspace already rejected profiling on rank-ordered engines.
  const SweepArgs args = MakeSweepArgs(ws);
  ws.profile_.levels.reserve(num_levels_);
  for (size_t group = 0; group < num_levels_; ++group) {
    const VertexId begin = level_begin_[group];
    const VertexId end = level_begin_[group + 1];
    // Group g holds CH level num_levels_ - 1 - g (the sweep descends).
    const auto level = static_cast<uint32_t>(num_levels_ - 1 - group);
    PHAST_SPAN_ARG("sweep.level", level);
    const Timer timer;
    kernel(args, begin, end);
    obs::LevelProfile profile;
    profile.level = level;
    profile.vertices = end - begin;
    // Arc ranges are keyed by sweep position, so a level group's scanned
    // arc count is one subtraction on the CSR offset column.
    profile.arcs = down_first_[end] - down_first_[begin];
    profile.nanos = ElapsedNanos(timer);
    profile.bytes = obs::ModelSweepBytes(profile.vertices, profile.arcs,
                                         ws.k_, ws.implicit_init_);
    ws.profile_.levels.push_back(profile);
  }
}

void Phast::ComputeTreesParallel(std::span<const VertexId> sources,
                                 Workspace& ws) const {
  Require(!level_begin_.empty(),
          "per-level parallel sweep requires a level-ordered engine");
  PHAST_SPAN_ARG("phast.batch_parallel", ws.k_);
  Timer timer;
  {
    PHAST_SPAN("phast.upward");
    PrepareBatch(sources, ws);
  }
  ws.last_upward_ns_ = ElapsedNanos(timer);
  const SweepKernelFn kernel = SelectSweepKernel(
      options_.simd, ws.k_, ws.want_parents_, ws.implicit_init_);
  const SweepArgs args = MakeSweepArgs(ws);

  // Levels with fewer vertices than this run serially; forking threads for
  // the tiny top levels costs more than it saves.
  constexpr VertexId kParallelThreshold = 512;

  timer.Reset();
  if (ws.collect_profile_) ws.profile_.levels.reserve(num_levels_);
  for (size_t group = 0; group < num_levels_; ++group) {
    const VertexId begin = level_begin_[group];
    const VertexId end = level_begin_[group + 1];
    const Timer level_timer;
    if (end - begin < kParallelThreshold) {
      kernel(args, begin, end);
    } else {
      // The kernel only reads shared sweep state (labels of lower levels
      // are finalized by the per-level barrier; mark words are read-only
      // during the sweep), so the explicit sharing list is all read-only.
#pragma omp parallel default(none) shared(kernel, args, begin, end)
      {
        const uint32_t threads = static_cast<uint32_t>(TeamSize());
        const uint32_t me = static_cast<uint32_t>(CurrentThread());
        const VertexId span = end - begin;
        const VertexId chunk = (span + threads - 1) / threads;
        const VertexId my_begin = begin + std::min<VertexId>(span, me * chunk);
        const VertexId my_end =
            begin + std::min<VertexId>(span, (me + 1) * chunk);
        if (my_begin < my_end) kernel(args, my_begin, my_end);
      }
    }
    if (ws.collect_profile_) {
      obs::LevelProfile profile;
      profile.level = static_cast<uint32_t>(num_levels_ - 1 - group);
      profile.vertices = end - begin;
      profile.arcs = down_first_[end] - down_first_[begin];
      profile.nanos = ElapsedNanos(level_timer);
      profile.bytes = obs::ModelSweepBytes(profile.vertices, profile.arcs,
                                           ws.k_, ws.implicit_init_);
      ws.profile_.levels.push_back(profile);
    }
  }
  ws.last_sweep_ns_ = ElapsedNanos(timer);
  if (ws.collect_profile_) {
    ws.profile_.upward.nanos = ws.last_upward_ns_;
    ws.profile_.sweep_nanos = ws.last_sweep_ns_;
  }
  FinishBatch(ws);
}

VertexId Phast::ParentInGPlus(const Workspace& ws, VertexId v,
                              uint32_t tree) const {
  Require(ws.want_parents_, "workspace was created without parent tracking");
  const size_t slot = static_cast<size_t>(perm_[v]) * ws.k_ + tree;
  if (ws.labels_[slot] == kInfWeight) return kInvalidVertex;
  const VertexId parent_label = ws.parents_[slot];
  if (parent_label == kInvalidVertex) return kInvalidVertex;
  return inv_perm_[parent_label];
}

}  // namespace phast

#pragma once

#include <cstdint>
#include <type_traits>

#include "graph/types.h"
#include "phast/options.h"
#include "util/aligned.h"

namespace phast {

/// One incoming downward arc as stored by the sweep: the tail in label
/// space (the index used for distance lookups) and the arc length.
struct DownArc {
  VertexId tail = 0;
  Weight weight = 0;

  friend bool operator==(const DownArc&, const DownArc&) = default;
};

// Layout contracts of the sweep (§IV-A/§IV-B). The SIMD kernels assume
// 32-bit labels (4 per SSE lane, 8 per AVX2 lane) laid out k-strided in a
// backing array whose alignment covers the widest vector; DownArc entries
// must pack so the downward arc scan streams 8 arcs per cache line.
static_assert(std::is_trivially_copyable_v<DownArc> && sizeof(DownArc) == 8,
              "DownArc must pack to 8 bytes for the streaming arc scan");
static_assert(sizeof(Weight) == 4 && sizeof(VertexId) == 4,
              "sweep kernels assume 32-bit labels and parents "
              "(4 per 128-bit lane, 8 per 256-bit lane)");
static_assert(AlignedVector<Weight>::allocator_type::alignment % 32 == 0,
              "label arrays must be aligned to at least the AVX2 width; the "
              "k-strided row of vertex v starts at offset v*k*4");

/// Everything a sweep kernel needs, in raw-pointer form so the same kernels
/// serve the CPU engine and the GPU simulator's reference path.
struct SweepArgs {
  const ArcId* down_first = nullptr;   // n+1, keyed by sweep position
  const DownArc* down_arcs = nullptr;  // grouped by sweep position
  /// Sweep position -> label-space vertex id; nullptr when they coincide
  /// (the reordered layout).
  const VertexId* order = nullptr;
  VertexId num_vertices = 0;
  uint32_t k = 1;  // trees per sweep

  Weight* labels = nullptr;  // k-strided: labels[v*k + tree]
  /// Visit marks for implicit initialization (read-only during the sweep);
  /// nullptr when labels were explicitly initialized.
  const uint64_t* marks = nullptr;
  /// Parent (arc tail, label space) per label; nullptr if not requested.
  ///
  /// INVARIANT (implicit-init mode): when a sweep kernel resets the labels
  /// of an unmarked vertex to +infinity, it does NOT reset the vertex's
  /// parent slots — they keep whatever the previous batch wrote. A parent
  /// slot is therefore only meaningful where labels[v*k + tree] != inf;
  /// every reader must check the label first (Phast::ParentInGPlus does).
  /// Kernels rely on this asymmetry to keep the unmarked-vertex fast path
  /// a pure label fill.
  VertexId* parents = nullptr;

  [[nodiscard]] bool Marked(VertexId v) const {
    return (marks[v >> 6] >> (v & 63)) & 1;
  }
};

// SweepArgs is passed by value into every kernel invocation (and
// firstprivate-copied into OpenMP regions); it must stay a plain bundle of
// pointers and scalars.
static_assert(std::is_trivially_copyable_v<SweepArgs>,
              "SweepArgs must remain trivially copyable");

/// Pointer to a kernel that sweeps positions [begin, end).
using SweepKernelFn = void (*)(const SweepArgs&, VertexId begin, VertexId end);

/// Selects the widest kernel compatible with the requested mode, the CPU,
/// and k (SSE needs k % 4 == 0, AVX2 needs k % 8 == 0). `want_parents` and
/// `use_marks` pick the matching template instantiation.
SweepKernelFn SelectSweepKernel(SimdMode mode, uint32_t k, bool want_parents,
                                bool use_marks);

/// Name of the kernel that SelectSweepKernel would return ("scalar", "sse",
/// "avx2") — benchmarks report it.
const char* SweepKernelName(SimdMode mode, uint32_t k);

/// True if the binary and CPU can run the given SIMD mode at all.
bool SimdModeAvailable(SimdMode mode);

}  // namespace phast

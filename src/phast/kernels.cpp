#include "phast/kernels.h"

#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace phast {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernel. Template parameters peel the per-vertex mark test and the
// per-label parent tracking out of the inner loop.
// ---------------------------------------------------------------------------

template <bool kUseMarks, bool kParents>
void ScalarSweep(const SweepArgs& a, VertexId begin, VertexId end) {
  const uint32_t k = a.k;
  for (VertexId pos = begin; pos < end; ++pos) {
    const VertexId v = a.order != nullptr ? a.order[pos] : pos;
    Weight* dv = a.labels + static_cast<size_t>(v) * k;
    if constexpr (kUseMarks) {
      // Unmarked vertices were untouched by the upward search: their labels
      // are stale, so treat them as +infinity (§IV-C).
      if (!a.Marked(v)) {
        for (uint32_t i = 0; i < k; ++i) dv[i] = kInfWeight;
      }
    }
    const ArcId arc_end = a.down_first[pos + 1];
    for (ArcId arc = a.down_first[pos]; arc < arc_end; ++arc) {
      const VertexId u = a.down_arcs[arc].tail;
      const Weight w = a.down_arcs[arc].weight;
      const Weight* du = a.labels + static_cast<size_t>(u) * k;
      for (uint32_t i = 0; i < k; ++i) {
        const Weight candidate = SaturatingAdd(du[i], w);
        if (candidate < dv[i]) {
          dv[i] = candidate;
          if constexpr (kParents) {
            a.parents[static_cast<size_t>(v) * k + i] = u;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SSE4.1 kernel: four trees per 128-bit lane (§IV-B). Additions saturate at
// kInfWeight so "infinity plus arc weight" stays infinity even for graphs
// whose distances approach 2^32.
// ---------------------------------------------------------------------------

#if defined(__SSE4_1__)

inline __m128i SaturatingAddEpu32(__m128i a, __m128i b) {
  const __m128i sign = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i sum = _mm_add_epi32(a, b);
  // Unsigned a > sum detects wrap-around; flooding those lanes with ones
  // saturates them at kInfWeight.
  const __m128i overflow =
      _mm_cmpgt_epi32(_mm_xor_si128(a, sign), _mm_xor_si128(sum, sign));
  return _mm_or_si128(sum, overflow);
}

template <bool kUseMarks, bool kParents>
void SseSweep(const SweepArgs& a, VertexId begin, VertexId end) {
  const uint32_t k = a.k;
  const __m128i inf = _mm_set1_epi32(-1);
  const __m128i sign = _mm_set1_epi32(static_cast<int>(0x80000000u));
  for (VertexId pos = begin; pos < end; ++pos) {
    const VertexId v = a.order != nullptr ? a.order[pos] : pos;
    Weight* dv = a.labels + static_cast<size_t>(v) * k;
    if constexpr (kUseMarks) {
      if (!a.Marked(v)) {
        for (uint32_t i = 0; i < k; i += 4) {
          _mm_storeu_si128(reinterpret_cast<__m128i*>(dv + i), inf);
        }
      }
    }
    const ArcId arc_end = a.down_first[pos + 1];
    for (ArcId arc = a.down_first[pos]; arc < arc_end; ++arc) {
      const VertexId u = a.down_arcs[arc].tail;
      const __m128i wvec = _mm_set1_epi32(
          static_cast<int>(a.down_arcs[arc].weight));
      const Weight* du = a.labels + static_cast<size_t>(u) * k;
      for (uint32_t i = 0; i < k; i += 4) {
        const __m128i lu =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(du + i));
        const __m128i lv =
            _mm_loadu_si128(reinterpret_cast<__m128i*>(dv + i));
        const __m128i cand = SaturatingAddEpu32(lu, wvec);
        if constexpr (kParents) {
          const __m128i improved = _mm_cmpgt_epi32(_mm_xor_si128(lv, sign),
                                                   _mm_xor_si128(cand, sign));
          VertexId* pv = a.parents + static_cast<size_t>(v) * k + i;
          const __m128i old_par =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(pv));
          const __m128i new_par = _mm_blendv_epi8(
              old_par, _mm_set1_epi32(static_cast<int>(u)), improved);
          _mm_storeu_si128(reinterpret_cast<__m128i*>(pv), new_par);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dv + i),
                         _mm_min_epu32(lv, cand));
      }
    }
  }
}

#endif  // __SSE4_1__

// ---------------------------------------------------------------------------
// AVX2 kernel: eight trees per 256-bit lane. An extension beyond the paper
// (which targets 128-bit SSE); same structure, twice the width.
// ---------------------------------------------------------------------------

#if defined(__AVX2__)

inline __m256i SaturatingAddEpu32Avx(__m256i a, __m256i b) {
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i sum = _mm256_add_epi32(a, b);
  const __m256i overflow = _mm256_cmpgt_epi32(_mm256_xor_si256(a, sign),
                                              _mm256_xor_si256(sum, sign));
  return _mm256_or_si256(sum, overflow);
}

template <bool kUseMarks, bool kParents>
void Avx2Sweep(const SweepArgs& a, VertexId begin, VertexId end) {
  const uint32_t k = a.k;
  const __m256i inf = _mm256_set1_epi32(-1);
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  for (VertexId pos = begin; pos < end; ++pos) {
    const VertexId v = a.order != nullptr ? a.order[pos] : pos;
    Weight* dv = a.labels + static_cast<size_t>(v) * k;
    if constexpr (kUseMarks) {
      if (!a.Marked(v)) {
        for (uint32_t i = 0; i < k; i += 8) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dv + i), inf);
        }
      }
    }
    const ArcId arc_end = a.down_first[pos + 1];
    for (ArcId arc = a.down_first[pos]; arc < arc_end; ++arc) {
      const VertexId u = a.down_arcs[arc].tail;
      const __m256i wvec = _mm256_set1_epi32(
          static_cast<int>(a.down_arcs[arc].weight));
      const Weight* du = a.labels + static_cast<size_t>(u) * k;
      for (uint32_t i = 0; i < k; i += 8) {
        const __m256i lu =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(du + i));
        const __m256i lv =
            _mm256_loadu_si256(reinterpret_cast<__m256i*>(dv + i));
        const __m256i cand = SaturatingAddEpu32Avx(lu, wvec);
        if constexpr (kParents) {
          const __m256i improved = _mm256_cmpgt_epi32(
              _mm256_xor_si256(lv, sign), _mm256_xor_si256(cand, sign));
          VertexId* pv = a.parents + static_cast<size_t>(v) * k + i;
          const __m256i old_par =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pv));
          const __m256i new_par = _mm256_blendv_epi8(
              old_par, _mm256_set1_epi32(static_cast<int>(u)), improved);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(pv), new_par);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dv + i),
                            _mm256_min_epu32(lv, cand));
      }
    }
  }
}

#endif  // __AVX2__

enum class KernelKind { kScalar, kSse, kAvx2 };

KernelKind ResolveKind(SimdMode mode, uint32_t k) {
  const bool sse_ok = SimdModeAvailable(SimdMode::kSse) && k % 4 == 0;
  const bool avx_ok = SimdModeAvailable(SimdMode::kAvx2) && k % 8 == 0;
  switch (mode) {
    case SimdMode::kScalar:
      return KernelKind::kScalar;
    case SimdMode::kSse:
      return sse_ok ? KernelKind::kSse : KernelKind::kScalar;
    case SimdMode::kAvx2:
      return avx_ok ? KernelKind::kAvx2 : KernelKind::kScalar;
    case SimdMode::kAuto:
      if (avx_ok) return KernelKind::kAvx2;
      if (sse_ok) return KernelKind::kSse;
      return KernelKind::kScalar;
  }
  return KernelKind::kScalar;
}

template <bool kUseMarks, bool kParents>
SweepKernelFn PickKernel(KernelKind kind) {
  switch (kind) {
#if defined(__SSE4_1__)
    case KernelKind::kSse:
      return &SseSweep<kUseMarks, kParents>;
#endif
#if defined(__AVX2__)
    case KernelKind::kAvx2:
      return &Avx2Sweep<kUseMarks, kParents>;
#endif
    default:
      return &ScalarSweep<kUseMarks, kParents>;
  }
}

}  // namespace

bool SimdModeAvailable(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
    case SimdMode::kAuto:
      return true;
    case SimdMode::kSse:
#if defined(__SSE4_1__)
      return __builtin_cpu_supports("sse4.1");
#else
      return false;
#endif
    case SimdMode::kAvx2:
#if defined(__AVX2__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

SweepKernelFn SelectSweepKernel(SimdMode mode, uint32_t k, bool want_parents,
                                bool use_marks) {
  const KernelKind kind = ResolveKind(mode, k);
  if (use_marks) {
    return want_parents ? PickKernel<true, true>(kind)
                        : PickKernel<true, false>(kind);
  }
  return want_parents ? PickKernel<false, true>(kind)
                      : PickKernel<false, false>(kind);
}

const char* SweepKernelName(SimdMode mode, uint32_t k) {
  switch (ResolveKind(mode, k)) {
    case KernelKind::kSse:
      return "sse";
    case KernelKind::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

}  // namespace phast

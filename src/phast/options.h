#pragma once

#include <cstdint>

namespace phast {

/// Order in which the linear sweep (phase two) scans vertices, and whether
/// vertex data is physically reordered to match. These are the three PHAST
/// variants of Table I.
enum class SweepOrder {
  /// Basic PHAST (§III): scan in descending rank order with vertex data in
  /// input order. Correct but cache-hostile.
  kRankDescending,

  /// Scan level by level (descending), vertices within a level in ascending
  /// input ID; data stays in input order (§IV-A first step: 2.0 s → 0.7 s).
  kLevelNoReorder,

  /// Full §IV-A reordering: vertices are relabeled so the sweep is a single
  /// ascending scan with sequential access to vertices, arcs, and written
  /// labels (0.7 s → 172 ms in the paper).
  kLevelReordered,
};

/// Which k-tree sweep kernel to use (§IV-B "SSE instructions").
enum class SimdMode {
  kScalar,
  kSse,   // 4 x 32-bit labels per 128-bit register; requires SSE4.1 min_epu32
  kAvx2,  // 8 x 32-bit labels per 256-bit register (our extension)
  kAuto,  // widest kernel the CPU and k allow
};

struct PhastOptions {
  SweepOrder order = SweepOrder::kLevelReordered;
  SimdMode simd = SimdMode::kAuto;

  /// Implicit initialization via visit marks (§IV-C). When false, every
  /// tree computation starts with an explicit O(n·k) fill of the label
  /// array — the ~10 ms penalty the paper avoids.
  bool implicit_init = true;

  /// Collect a per-level obs::SweepProfile on every batch (the paper's
  /// Figure 1 shape; DESIGN.md §8). Runs the sweep level group by level
  /// group with a timer around each, so it perturbs the measurement it
  /// takes — leave off outside profiling runs. Requires a level-ordered
  /// sweep. Runtime-only knob: deliberately not serialized into snapshots
  /// (a loaded engine profiles only if the host process asks again).
  bool collect_profile = false;
};

}  // namespace phast

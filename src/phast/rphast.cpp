#include "phast/rphast.h"

#include <algorithm>

#include "util/bit_vector.h"
#include "util/error.h"

namespace phast {

RPhast::RPhast(const Phast& engine, std::span<const VertexId> targets)
    : engine_(engine) {
  Require(!targets.empty(), "RPHAST needs at least one target");
  Require(!engine.LevelBoundaries().empty(),
          "RPHAST requires a level-ordered PHAST engine");
  Require(engine.GetOptions().implicit_init,
          "RPHAST requires implicit initialization (visited tracking)");
  const VertexId n = engine.NumVertices();

  // Grab the engine's sweep topology (pointers outlive the workspace).
  Phast::Workspace probe = engine.MakeWorkspace(1);
  const SweepArgs args = engine.MakeSweepArgs(probe);

  const auto label_of_pos = [&args](VertexId pos) {
    return args.order != nullptr ? args.order[pos] : pos;
  };
  std::vector<VertexId> pos_of_label(n);
  for (VertexId pos = 0; pos < n; ++pos) pos_of_label[label_of_pos(pos)] = pos;

  // Relevance pass: a vertex is relevant iff it is a target or has a
  // downward arc into a relevant vertex. Arc tails sit at strictly smaller
  // sweep positions than their heads, so one descending pass suffices.
  BitVector relevant(n);
  for (const VertexId t : targets) {
    Require(t < n, "RPHAST target out of range");
    relevant.Set(pos_of_label[engine.LabelIndexOf(t)]);
  }
  for (VertexId pos = n; pos-- > 0;) {
    if (!relevant.Get(pos)) continue;
    const ArcId end = args.down_first[pos + 1];
    for (ArcId a = args.down_first[pos]; a < end; ++a) {
      relevant.Set(pos_of_label[args.down_arcs[a].tail]);
    }
  }

  // Compact the restricted subgraph in ascending sweep order. Tails always
  // precede heads, so their restricted positions are already assigned.
  position_of_.assign(n, kNotRestricted);
  std::vector<uint32_t> restricted_of_pos(n, kNotRestricted);
  first_.push_back(0);
  for (VertexId pos = 0; pos < n; ++pos) {
    if (!relevant.Get(pos)) continue;
    const uint32_t slot = static_cast<uint32_t>(order_.size());
    restricted_of_pos[pos] = slot;
    order_.push_back(label_of_pos(pos));
    position_of_[label_of_pos(pos)] = slot;
    const ArcId end = args.down_first[pos + 1];
    for (ArcId a = args.down_first[pos]; a < end; ++a) {
      const uint32_t tail_slot =
          restricted_of_pos[pos_of_label[args.down_arcs[a].tail]];
      arcs_.push_back(RestrictedArc{tail_slot, args.down_arcs[a].weight});
    }
    first_.push_back(static_cast<ArcId>(arcs_.size()));
  }

  target_slot_.reserve(targets.size());
  for (const VertexId t : targets) {
    target_slot_.push_back(position_of_[engine.LabelIndexOf(t)]);
  }
}

void RPhast::ComputeTree(VertexId source, Workspace& ws) const {
  // Phase one: unrestricted upward CH search (it is tiny regardless).
  engine_.RunUpwardPhase({&source, 1}, ws.full);

  // Scatter upward labels into the restricted label array. The restricted
  // set is small, so explicit initialization is cheap here.
  std::fill(ws.labels.begin(), ws.labels.end(), kInfWeight);
  const std::span<const Weight> full_labels = engine_.RawLabels(ws.full);
  for (const VertexId v : engine_.VisitedLabelVertices(ws.full)) {
    const uint32_t slot = position_of_[v];
    if (slot != kNotRestricted) ws.labels[slot] = full_labels[v];
  }
  engine_.FinishExternalSweep(ws.full);

  // Phase two: linear sweep over the restricted arrays only.
  const size_t m = order_.size();
  for (size_t slot = 0; slot < m; ++slot) {
    Weight d = ws.labels[slot];
    const ArcId end = first_[slot + 1];
    for (ArcId a = first_[slot]; a < end; ++a) {
      const Weight candidate =
          SaturatingAdd(ws.labels[arcs_[a].tail], arcs_[a].weight);
      d = std::min(d, candidate);
    }
    ws.labels[slot] = d;
  }
}

}  // namespace phast

#include "phast/rphast.h"

#include <algorithm>

#include "phast/kernels.h"
#include "util/bit_vector.h"
#include "util/error.h"

namespace phast {

// The k-wide path reinterprets the restricted arc array as DownArc[] so the
// engine's sweep kernels can stream it; the layouts must stay in lockstep.
static_assert(sizeof(RPhast::RestrictedArc) == sizeof(DownArc) &&
                  std::is_trivially_copyable_v<RPhast::RestrictedArc>,
              "RestrictedArc must mirror DownArc's layout for kernel reuse");

RPhast::RPhast(const Phast& engine, std::span<const VertexId> targets)
    : engine_(engine) {
  Require(!targets.empty(), "RPHAST needs at least one target");
  Require(!engine.LevelBoundaries().empty(),
          "RPHAST requires a level-ordered PHAST engine");
  Require(engine.GetOptions().implicit_init,
          "RPHAST requires implicit initialization (visited tracking)");
  const VertexId n = engine.NumVertices();

  // Grab the engine's sweep topology (pointers outlive the workspace).
  Phast::Workspace probe = engine.MakeWorkspace(1);
  const SweepArgs args = engine.MakeSweepArgs(probe);

  const auto label_of_pos = [&args](VertexId pos) {
    return args.order != nullptr ? args.order[pos] : pos;
  };
  std::vector<VertexId> pos_of_label(n);
  for (VertexId pos = 0; pos < n; ++pos) pos_of_label[label_of_pos(pos)] = pos;

  // Relevance pass: a vertex is relevant iff it is a target or has a
  // downward arc into a relevant vertex. Arc tails sit at strictly smaller
  // sweep positions than their heads, so one descending pass suffices.
  BitVector relevant(n);
  for (const VertexId t : targets) {
    Require(t < n, "RPHAST target out of range");
    relevant.Set(pos_of_label[engine.LabelIndexOf(t)]);
  }
  for (VertexId pos = n; pos-- > 0;) {
    if (!relevant.Get(pos)) continue;
    const ArcId end = args.down_first[pos + 1];
    for (ArcId a = args.down_first[pos]; a < end; ++a) {
      relevant.Set(pos_of_label[args.down_arcs[a].tail]);
    }
  }

  // Compact the restricted subgraph in ascending sweep order. Tails always
  // precede heads, so their restricted positions are already assigned.
  position_of_.assign(n, kNotRestricted);
  std::vector<uint32_t> restricted_of_pos(n, kNotRestricted);
  first_.push_back(0);
  for (VertexId pos = 0; pos < n; ++pos) {
    if (!relevant.Get(pos)) continue;
    const uint32_t slot = static_cast<uint32_t>(order_.size());
    restricted_of_pos[pos] = slot;
    order_.push_back(label_of_pos(pos));
    position_of_[label_of_pos(pos)] = slot;
    const ArcId end = args.down_first[pos + 1];
    for (ArcId a = args.down_first[pos]; a < end; ++a) {
      const uint32_t tail_slot =
          restricted_of_pos[pos_of_label[args.down_arcs[a].tail]];
      arcs_.push_back(RestrictedArc{tail_slot, args.down_arcs[a].weight});
    }
    first_.push_back(static_cast<ArcId>(arcs_.size()));
  }

  target_slot_.reserve(targets.size());
  for (const VertexId t : targets) {
    target_slot_.push_back(position_of_[engine.LabelIndexOf(t)]);
  }
}

void RPhast::ComputeTree(VertexId source, Workspace& ws) const {
  // Phase one: unrestricted upward CH search (it is tiny regardless).
  engine_.RunUpwardPhase({&source, 1}, ws.full);

  // Scatter upward labels into the restricted label array. The restricted
  // set is small, so explicit initialization is cheap here.
  std::fill(ws.labels.begin(), ws.labels.end(), kInfWeight);
  const std::span<const Weight> full_labels = engine_.RawLabels(ws.full);
  for (const VertexId v : engine_.VisitedLabelVertices(ws.full)) {
    const uint32_t slot = position_of_[v];
    if (slot != kNotRestricted) ws.labels[slot] = full_labels[v];
  }
  engine_.FinishExternalSweep(ws.full);

  // Phase two: linear sweep over the restricted arrays only.
  const size_t m = order_.size();
  for (size_t slot = 0; slot < m; ++slot) {
    Weight d = ws.labels[slot];
    const ArcId end = first_[slot + 1];
    for (ArcId a = first_[slot]; a < end; ++a) {
      const Weight candidate =
          SaturatingAdd(ws.labels[arcs_[a].tail], arcs_[a].weight);
      d = std::min(d, candidate);
    }
    ws.labels[slot] = d;
  }
}

void RPhast::ComputeTrees(std::span<const VertexId> sources,
                          BatchWorkspace& ws) const {
  const uint32_t k = ws.k_;
  Require(sources.size() == k, "ComputeTrees: sources must match workspace k");

  // Phase one: one batched upward search over the full graph.
  engine_.RunUpwardPhase(sources, ws.full);

  // Scatter upward labels into the k-strided restricted array. Explicit
  // initialization keeps the kernel invocation mark-free.
  std::fill(ws.labels.begin(), ws.labels.end(), kInfWeight);
  const std::span<const Weight> full_labels = engine_.RawLabels(ws.full);
  for (const VertexId v : engine_.VisitedLabelVertices(ws.full)) {
    const uint32_t slot = position_of_[v];
    if (slot == kNotRestricted) continue;
    const size_t src = static_cast<size_t>(v) * k;
    const size_t dst = static_cast<size_t>(slot) * k;
    for (uint32_t tree = 0; tree < k; ++tree) {
      ws.labels[dst + tree] = full_labels[src + tree];
    }
  }
  engine_.FinishExternalSweep(ws.full);

  // Phase two: the restricted arrays already form a sweep topology (arc
  // tails at strictly earlier slots, order == identity), so hand them to
  // the same kernel the full engine would use at this k.
  SweepArgs args;
  args.down_first = first_.data();
  args.down_arcs = reinterpret_cast<const DownArc*>(arcs_.data());
  args.order = nullptr;
  args.num_vertices = static_cast<VertexId>(order_.size());
  args.k = k;
  args.labels = ws.labels.data();
  args.marks = nullptr;
  args.parents = nullptr;
  const SweepKernelFn kernel = SelectSweepKernel(
      engine_.GetOptions().simd, k, /*want_parents=*/false,
      /*use_marks=*/false);
  kernel(args, 0, args.num_vertices);
}

}  // namespace phast

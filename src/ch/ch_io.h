#pragma once

#include <iosfwd>
#include <string>

#include "ch/ch_data.h"

namespace phast {

/// Binary serialization of a contraction hierarchy, so the minutes-long
/// preprocessing runs once and queries/PHAST restart instantly (the paper
/// amortizes preprocessing over many trees; persisting it amortizes across
/// process lifetimes too).
///
/// Format: little-endian, versioned header ("PHASTCH1"), then the rank and
/// level arrays and both arc sets. Not portable to big-endian hosts.

void WriteCH(const CHData& ch, std::ostream& out);
void WriteCHFile(const CHData& ch, const std::string& path);

/// Throws InputError on malformed or truncated input.
[[nodiscard]] CHData ReadCH(std::istream& in);
[[nodiscard]] CHData ReadCHFile(const std::string& path);

}  // namespace phast

#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace phast {

/// CSR over CH arcs that keeps the shortcut middle vertex (`via`) alongside
/// each arc, so queries can unpack shortcuts into original-graph paths.
///
/// Forward orientation keys arcs by tail (Arc::other = head); reverse
/// orientation keys by head (Arc::other = tail). Arcs of a vertex are
/// sorted by `other`, enabling binary-searched arc lookup.
class SearchGraph {
 public:
  SearchGraph() { first_.push_back(0); }

  static SearchGraph Forward(VertexId n, const std::vector<CHArc>& arcs) {
    return Build(n, arcs, /*reverse=*/false);
  }

  static SearchGraph Reverse(VertexId n, const std::vector<CHArc>& arcs) {
    return Build(n, arcs, /*reverse=*/true);
  }

  [[nodiscard]] VertexId NumVertices() const {
    return static_cast<VertexId>(first_.size() - 1);
  }
  [[nodiscard]] size_t NumArcs() const { return arcs_.size(); }

  [[nodiscard]] std::span<const Arc> ArcsOf(VertexId v) const {
    return {arcs_.data() + first_[v], arcs_.data() + first_[v + 1]};
  }

  /// The shortcut middle vertex of the arc at absolute index `arc_index`
  /// (kInvalidVertex for original arcs).
  [[nodiscard]] VertexId ViaOf(ArcId arc_index) const {
    return via_[arc_index];
  }

  [[nodiscard]] ArcId FirstOf(VertexId v) const { return first_[v]; }

  /// Cheapest arc keyed_vertex -> other (or reverse); returns false if
  /// absent. Used by shortcut unpacking.
  [[nodiscard]] bool FindArc(VertexId keyed, VertexId other, Weight* weight,
                             VertexId* via) const {
    ArcId lo = first_[keyed];
    ArcId hi = first_[keyed + 1];
    while (lo < hi) {  // lower_bound over the sorted arc slice
      const ArcId mid = lo + (hi - lo) / 2;
      if (arcs_[mid].other < other) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == first_[keyed + 1] || arcs_[lo].other != other) return false;
    *weight = arcs_[lo].weight;
    *via = via_[lo];
    return true;
  }

 private:
  static SearchGraph Build(VertexId n, const std::vector<CHArc>& arcs,
                           bool reverse) {
    SearchGraph g;
    g.first_.assign(static_cast<size_t>(n) + 1, 0);
    g.arcs_.resize(arcs.size());
    g.via_.resize(arcs.size());
    for (const CHArc& a : arcs) {
      ++g.first_[(reverse ? a.head : a.tail) + 1];
    }
    for (size_t v = 1; v <= n; ++v) g.first_[v] += g.first_[v - 1];
    std::vector<ArcId> cursor(g.first_.begin(), g.first_.end() - 1);
    // Two passes keep weight/via parallel; insertion order within a vertex
    // is fixed up by the sort below.
    for (const CHArc& a : arcs) {
      const VertexId key = reverse ? a.head : a.tail;
      const VertexId other = reverse ? a.tail : a.head;
      const ArcId slot = cursor[key]++;
      g.arcs_[slot] = Arc{other, a.weight};
      g.via_[slot] = a.via;
    }
    for (VertexId v = 0; v < n; ++v) {
      // Sort each slice by (other, weight), carrying via along.
      const ArcId begin = g.first_[v];
      const ArcId end = g.first_[v + 1];
      std::vector<std::pair<Arc, VertexId>> slice;
      slice.reserve(end - begin);
      for (ArcId i = begin; i < end; ++i) {
        slice.emplace_back(g.arcs_[i], g.via_[i]);
      }
      std::sort(slice.begin(), slice.end(),
                [](const auto& x, const auto& y) {
                  if (x.first.other != y.first.other) {
                    return x.first.other < y.first.other;
                  }
                  return x.first.weight < y.first.weight;
                });
      for (ArcId i = begin; i < end; ++i) {
        g.arcs_[i] = slice[i - begin].first;
        g.via_[i] = slice[i - begin].second;
      }
    }
    return g;
  }

  std::vector<ArcId> first_;
  std::vector<Arc> arcs_;
  std::vector<VertexId> via_;
};

}  // namespace phast

#pragma once

#include <cstdint>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "obs/contraction_profile.h"

namespace phast {

/// Tuning knobs of the CH preprocessing routine (§VIII-A).
struct CHParams {
  /// Coefficients of the priority term 2·ED(u) + CN(u) + H(u) + 5·L(u).
  int32_t ed_coefficient = 2;
  int32_t cn_coefficient = 1;
  int32_t h_coefficient = 1;
  int32_t level_coefficient = 5;

  /// Cap on the H(u) contribution of a single incident arc ("we bound H(u)
  /// such that every incident arc of u can contribute at most 3").
  uint32_t h_per_arc_cap = 3;

  /// Witness-search hop limits by average degree of the uncontracted graph:
  /// 5 hops while avg degree <= 5, then 10 hops while <= 10, then no limit.
  uint32_t hop_limit_low = 5;
  double degree_threshold_low = 5.0;
  uint32_t hop_limit_mid = 10;
  double degree_threshold_mid = 10.0;

  /// Safety valve on witness-search work; 0 = unlimited. Witness searches
  /// are heuristic — cutting them short only adds redundant shortcuts,
  /// never breaks correctness.
  uint32_t max_witness_settled = 0;

  /// After a round, re-simulate every vertex whose neighborhood changed to
  /// refresh its ED/H priority terms (the paper's policy, parallelized the
  /// same way, §VIII-A). When false, only the cheap CN/level terms are
  /// refreshed and ED/H stay at their initial estimates — roughly 2-4x
  /// faster preprocessing for ~15-25% more shortcuts.
  bool eager_neighbor_updates = true;

  /// OpenMP threads for the batched contraction rounds; 0 = all available.
  /// The engine is deterministic by construction: ranks, levels, and
  /// shortcut sets are bit-identical for every thread count (DESIGN.md §9).
  uint32_t threads = 0;

  /// Independence rule of the batch selection: a vertex is contracted in a
  /// round iff its (priority, id) key is minimal within this many hops of
  /// uncontracted neighborhood. 1 (default) admits batches that share
  /// neighbors; 2 forbids even that, trading smaller batches for strictly
  /// disjoint merge regions. Must be 1 or 2.
  uint32_t batch_neighborhood = 1;

  /// When false, contraction runs in *customizable* mode (the CCH idea,
  /// PAPERS.md): witness searches are skipped entirely and every lower
  /// triangle becomes a shortcut. The resulting hierarchy is larger but its
  /// topology, ranks, and levels depend only on the graph *structure*, never
  /// on arc weights — the metric-dependent H(u) priority term is dropped as
  /// well — so ch::CustomizeWeights can re-relax a new metric over the fixed
  /// shortcut structure and reproduce, byte for byte, the hierarchy a fresh
  /// contraction of the re-weighted graph would emit.
  bool witness_pruning = true;
};

/// Summary statistics of one preprocessing run, for logs and benchmarks.
struct CHStats {
  size_t shortcuts_added = 0;
  size_t witness_searches = 0;
  uint32_t num_levels = 0;
  /// Batched-contraction rounds executed (== profile.NumRounds()).
  uint32_t rounds = 0;
  double seconds = 0.0;
  /// Per-round batch/witness profile (round count, batch sizes, settled
  /// totals) — populated on every run; rendering is the caller's choice.
  obs::ContractionProfile profile;
};

/// Runs CH preprocessing on `graph` (must be a forward graph): batched
/// parallel contraction. Each round selects the independent set of vertices
/// whose (priority, id) is minimal within their `batch_neighborhood`-hop
/// uncontracted neighborhood, runs their witness searches in parallel over
/// per-thread workspaces (each member's searches exclude its earlier-key
/// batch peers, replaying its turn in the canonical order), then applies
/// shortcut insertions and neighbor updates in one deterministic serial
/// merge. Output is bit-identical
/// regardless of `threads`. Returns ranks, levels, and the upward/downward
/// arc sets.
[[nodiscard]] CHData BuildContractionHierarchy(const Graph& graph,
                                               const CHParams& params = {},
                                               CHStats* stats = nullptr);

}  // namespace phast

#pragma once

#include <cstdint>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace phast {

/// Tuning knobs of the CH preprocessing routine (§VIII-A).
struct CHParams {
  /// Coefficients of the priority term 2·ED(u) + CN(u) + H(u) + 5·L(u).
  int32_t ed_coefficient = 2;
  int32_t cn_coefficient = 1;
  int32_t h_coefficient = 1;
  int32_t level_coefficient = 5;

  /// Cap on the H(u) contribution of a single incident arc ("we bound H(u)
  /// such that every incident arc of u can contribute at most 3").
  uint32_t h_per_arc_cap = 3;

  /// Witness-search hop limits by average degree of the uncontracted graph:
  /// 5 hops while avg degree <= 5, then 10 hops while <= 10, then no limit.
  uint32_t hop_limit_low = 5;
  double degree_threshold_low = 5.0;
  uint32_t hop_limit_mid = 10;
  double degree_threshold_mid = 10.0;

  /// Safety valve on witness-search work; 0 = unlimited. Witness searches
  /// are heuristic — cutting them short only adds redundant shortcuts,
  /// never breaks correctness.
  uint32_t max_witness_settled = 0;

  /// After contracting a vertex, fully re-simulate each neighbor to refresh
  /// its priority (the paper's policy, parallelized there). When false,
  /// only the cheap CN/level terms are refreshed eagerly and the expensive
  /// ED/H terms lazily at pop time — roughly 2-4x faster preprocessing for
  /// ~15-25% more shortcuts.
  bool eager_neighbor_updates = true;
};

/// Summary statistics of one preprocessing run, for logs and benchmarks.
struct CHStats {
  size_t shortcuts_added = 0;
  size_t witness_searches = 0;
  uint32_t num_levels = 0;
  double seconds = 0.0;
};

/// Runs CH preprocessing on `graph` (must be a forward graph): repeatedly
/// contracts the minimum-priority vertex with lazy priority re-evaluation,
/// adding witness-checked shortcuts. Returns ranks, levels, and the
/// upward/downward arc sets.
[[nodiscard]] CHData BuildContractionHierarchy(const Graph& graph,
                                               const CHParams& params = {},
                                               CHStats* stats = nullptr);

}  // namespace phast

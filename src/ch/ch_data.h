#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// One arc of the contraction hierarchy: an original arc or a shortcut.
/// Shortcuts remember the contracted vertex they bypass (`via`) so paths in
/// G+ can be expanded into paths in G (§VII-A).
struct CHArc {
  VertexId tail = 0;
  VertexId head = 0;
  Weight weight = 0;
  VertexId via = kInvalidVertex;  // kInvalidVertex for original arcs

  [[nodiscard]] bool IsShortcut() const { return via != kInvalidVertex; }

  friend bool operator==(const CHArc&, const CHArc&) = default;
};

/// Output of CH preprocessing (§II-B): the contraction order, vertex levels
/// (§IV-A), and the arcs of G+ = (V, A ∪ A+) split into the upward set
/// A↑ = {(u,v) : rank(u) < rank(v)} and downward set A↓ = {(u,v) :
/// rank(u) > rank(v)}.
struct CHData {
  VertexId num_vertices = 0;

  /// rank[v] = position of v in the contraction order (0 = contracted
  /// first = least important).
  std::vector<uint32_t> rank;

  /// level[v] as defined in §IV-A: 0 initially; contracting u sets
  /// L(v) = max(L(v), L(u)+1) for every current neighbor v. Guarantees
  /// (v,w) ∈ A↓ ⇒ L(v) > L(w) (Lemma 4.1).
  std::vector<uint32_t> level;

  std::vector<CHArc> up_arcs;    // rank(tail) < rank(head)
  std::vector<CHArc> down_arcs;  // rank(tail) > rank(head)

  size_t num_shortcuts = 0;  // across both direction sets

  [[nodiscard]] uint32_t NumLevels() const {
    uint32_t max_level = 0;
    for (const uint32_t l : level) max_level = std::max(max_level, l);
    return level.empty() ? 0 : max_level + 1;
  }

  /// Histogram of vertices per level (Figure 1 of the paper).
  [[nodiscard]] std::vector<uint64_t> LevelHistogram() const {
    std::vector<uint64_t> histogram(NumLevels(), 0);
    for (const uint32_t l : level) ++histogram[l];
    return histogram;
  }

  /// Forward CSR over the upward arcs (the graph of the CH forward search).
  [[nodiscard]] Graph BuildUpGraph() const {
    EdgeList edges(num_vertices);
    for (const CHArc& a : up_arcs) edges.AddArc(a.tail, a.head, a.weight);
    return Graph::FromEdgeList(edges);
  }

  /// Reverse CSR over the downward arcs: arcs of v are its *incoming*
  /// downward arcs (u, v) with rank(u) > rank(v) — exactly what the PHAST
  /// sweep scans (§III).
  [[nodiscard]] Graph BuildDownGraphIncoming() const {
    EdgeList edges(num_vertices);
    for (const CHArc& a : down_arcs) edges.AddArc(a.tail, a.head, a.weight);
    return Graph::ReverseFromEdgeList(edges);
  }
};

}  // namespace phast

#pragma once

#include <cstdint>

#include "ch/ch_data.h"
#include "graph/csr.h"
#include "obs/customize_profile.h"

namespace phast {

/// Metric customization (the CCH idea, PAPERS.md): re-derive every G+ arc
/// weight for a new metric over a *fixed* shortcut topology, without
/// re-running contraction. Ranks, levels, and the arc sets stay untouched;
/// only the weight and via fields of the arcs change.

struct CustomizeOptions {
  /// OpenMP threads for the per-level relaxation passes; 0 = all available.
  /// Like contraction (DESIGN.md §9), the result is bit-identical for every
  /// thread count: concurrent relaxations of one arc merge through an
  /// atomic min over a thread-order-independent candidate set.
  uint32_t threads = 0;
};

/// Summary statistics of one customization run.
struct CustomizeStats {
  size_t arcs = 0;                // G+ arcs re-weighted (up + down)
  size_t original_arcs = 0;       // arcs seeded from the metric graph
  uint64_t triangles_relaxed = 0; // lower triangles enumerated
  uint32_t levels = 0;            // ascending level groups processed
  double seconds = 0.0;
  obs::CustomizeProfile profile;
};

/// Recomputes all arc weights of `ch` for the metric carried by `weights`,
/// in place, bottom-up: original arcs are seeded from the graph, shortcut
/// candidates are the lower-triangle sums w(u,v) + w(v,w) relaxed through
/// every via vertex v in ascending rank order (one parallel pass per CH
/// level; same-level vertices are never adjacent in G+, Lemma 4.1). All
/// additions saturate at kInfWeight. Each arc ends at the minimum over its
/// original weight and every triangle sum, with `via` set exactly as a
/// fresh witness-free contraction of the re-weighted graph would set it —
/// so for a hierarchy built with CHParams::witness_pruning == false the
/// customized CHData is byte-identical (ch_io serialization included) to a
/// from-scratch rebuild on the new metric.
///
/// Requirements, checked with InputError:
///  - `weights` has the same vertex count and exactly the arc set of the
///    graph the hierarchy was built from (no parallel arcs — Normalize()
///    the edge list first);
///  - the hierarchy is triangle-closed: for every via v with down-arc
///    (u, v) and up-arc (v, w), the arc (u, w) exists in G+. Hierarchies
///    built with witness_pruning == false are closed by construction;
///    witness-pruned ones generally are not (and a dropped shortcut whose
///    old-metric witness no longer holds would silently corrupt distances,
///    which is why this is an error rather than a skip).
void CustomizeWeights(CHData& ch, const Graph& weights,
                      const CustomizeOptions& options = {},
                      CustomizeStats* stats = nullptr);

}  // namespace phast

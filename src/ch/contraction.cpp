// Batched parallel CH preprocessing (DESIGN.md §9).
//
// The engine contracts one independent set per round instead of one vertex
// at a time (the recipe of Luxen & Schieferdecker and Wan et al., and the
// paper's own observation that CH preprocessing parallelizes well,
// §VIII-A). A round has four phases:
//
//   refresh   re-simulate vertices whose neighborhood changed last round to
//             update their ED/H priority terms (parallel, per-vertex pure)
//   select    mark every uncontracted vertex whose (priority, id) key is
//             minimal within its 1-hop (or 2-hop) uncontracted neighborhood
//             (parallel, read-only)
//   witness   run the selected vertices' witness searches over per-thread
//             workspaces; each member's searches exclude its earlier-key
//             batch peers, replaying the graph state of its turn in the
//             canonical merge order (parallel)
//   merge     apply shortcut insertions, arc emission, rank assignment, and
//             neighbor CN/level updates serially in ascending (priority,
//             id) order of the batch (the canonical contraction order)
//
// Determinism: every parallel phase computes a pure per-vertex function of
// the round-start graph snapshot into that vertex's own slot, and the only
// mutation happens in the serial merge, in canonical order. Ranks, levels,
// and shortcut sets are therefore bit-identical for every thread count —
// `threads=1` runs the same rounds serially and is the reference the
// determinism suite (tests/test_ch_parallel.cpp) pins parallel runs to.
//
// Correctness of batching: the selection key is a strict total order, so
// under the 1-hop rule no two adjacent vertices are ever selected — batch
// members' arc lists are untouched by the merge of the same round, and a
// shortcut's endpoints always survive its round. Excluding the earlier-key
// batch peers from each member's witness searches closes the classic
// simultaneous-contraction hole (two equal-length witnesses routing through
// each other's vertex, both shortcuts dropped): each search sees exactly
// the vertices that remain at its vertex's canonical turn, at the price of
// an occasional redundant shortcut, which never breaks correctness.
#include "ch/contraction.h"

#include <algorithm>
#include <queue>
#include <span>
#include <tuple>
#include <vector>

#include "obs/trace.h"
#include "util/error.h"
#include "util/omp_env.h"
#include "util/timer.h"

namespace phast {
namespace {

/// Process-wide fence giving ThreadSanitizer the happens-before edges that
/// libgomp's futex barriers hide (see OmpTeamFence). A function — not a
/// shared() capture — so the region bodies reach it without first reading
/// the compiler-generated argument block, which is exactly the memory the
/// entry edge has to cover. Monotonic tokens keep one instance correct for
/// any number of consecutive regions.
OmpTeamFence& Fence() {
  static OmpTeamFence fence;
  return fence;
}

/// Arc of the dynamic graph maintained during contraction. `hops` is the
/// number of original arcs the arc represents (1 for original arcs), used
/// by the H(u) priority term.
struct DynArc {
  VertexId other;
  Weight weight;
  VertexId via;
  uint32_t hops;
};

/// A witness-checked shortcut found by simulation, applied only if the
/// simulated vertex actually gets contracted.
struct PendingShortcut {
  VertexId tail;
  VertexId head;
  Weight weight;
  uint32_t hops;
};

/// Outcome of simulating the contraction of one vertex.
struct Simulation {
  std::vector<PendingShortcut> shortcuts;
  uint32_t arcs_removed = 0;
  uint32_t hop_sum = 0;  // H(u) term, per-arc capped
  uint32_t witness_searches = 0;
  uint64_t witness_settled = 0;

  [[nodiscard]] int64_t EdgeDifference() const {
    return static_cast<int64_t>(shortcuts.size()) -
           static_cast<int64_t>(arcs_removed);
  }
};

/// Scratch space for witness searches. Versioned distance labels avoid an
/// O(n) reset per search, and the small binary heap reuses its backing
/// vector across the millions of searches one preprocessing run performs;
/// each thread of the parallel phases owns one workspace.
struct WitnessWorkspace {
  struct HeapEntry {
    Weight dist;
    uint32_t hops;
    VertexId vertex;
  };

  std::vector<Weight> dist;
  std::vector<uint32_t> version;
  uint32_t current_version = 0;
  std::vector<HeapEntry> heap;
  // Version-stamped target marks: the search stops early once every target
  // of the current shortcut test has been settled.
  std::vector<uint32_t> target_version;

  void Init(VertexId n) {
    dist.assign(n, kInfWeight);
    version.assign(n, 0);
    current_version = 0;
    heap.clear();
    heap.reserve(64);
    target_version.assign(n, 0);
  }

  void Push(Weight d, uint32_t hops, VertexId v) {
    heap.push_back(HeapEntry{d, hops, v});
    size_t i = heap.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (heap[parent].dist <= heap[i].dist) break;
      std::swap(heap[parent], heap[i]);
      i = parent;
    }
  }

  HeapEntry Pop() {
    const HeapEntry top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    size_t i = 0;
    while (true) {
      const size_t left = 2 * i + 1;
      if (left >= heap.size()) break;
      size_t best = left;
      if (left + 1 < heap.size() && heap[left + 1].dist < heap[left].dist) {
        best = left + 1;
      }
      if (heap[i].dist <= heap[best].dist) break;
      std::swap(heap[i], heap[best]);
      i = best;
    }
    return top;
  }
};

class Contractor {
 public:
  Contractor(const Graph& graph, const CHParams& params)
      : params_(params), n_(graph.NumVertices()) {
    threads_ = params_.threads != 0
                   ? static_cast<int>(params_.threads)
                   : std::max(1, MaxThreads());
    out_.resize(n_);
    in_.resize(n_);
    for (VertexId v = 0; v < n_; ++v) {
      for (const Arc& a : graph.ArcsOf(v)) {
        out_[v].push_back(DynArc{a.other, a.weight, kInvalidVertex, 1});
        in_[a.other].push_back(DynArc{v, a.weight, kInvalidVertex, 1});
      }
    }
    contracted_.assign(n_, false);
    cn_.assign(n_, 0);
    level_.assign(n_, 0);
    cached_ed_.assign(n_, 0);
    cached_h_.assign(n_, 0);
    priority_.assign(n_, 0);
    selected_.assign(n_, 0);
    batch_stamp_.assign(n_, 0);
    dirty_stamp_.assign(n_, 0);
    remaining_arcs_ = graph.NumArcs();
    remaining_vertices_ = n_;
  }

  CHData Run(CHStats* stats) {
    PHAST_SPAN("ch.contract");
    Timer timer;
    CHData ch;
    ch.num_vertices = n_;
    ch.rank.assign(n_, 0);
    ch.level.assign(n_, 0);

    obs::ContractionProfile profile;
    profile.threads = static_cast<uint32_t>(threads_);
    profile.batch_neighborhood = params_.batch_neighborhood;

    // Per-thread witness workspaces, shared by every parallel phase. Each
    // thread indexes its own slot, so the pool is data-race-free as long as
    // the regions request exactly `threads_` threads.
    std::vector<WitnessWorkspace> pool(static_cast<size_t>(threads_));
    InitWorkspaces(pool);

    // Initial priorities: simulate every vertex once, in parallel. Each
    // iteration writes only its own cached_ed_/cached_h_/scratch slots, so
    // the result is independent of scheduling.
    {
      PHAST_SPAN("ch.initial_priorities");
      Timer init_timer;
      ComputeInitialPriorities(pool, &profile);
      total_witness_searches_ += profile.init_witness_searches;
      profile.init_nanos = static_cast<uint64_t>(init_timer.ElapsedSec() * 1e9);
    }

    // The round loop. Progress is guaranteed: the global minimum of the
    // strict (priority, id) order is locally minimal in any neighborhood,
    // so every round contracts at least one vertex.
    uint32_t next_rank = 0;
    std::vector<VertexId> dirty;       // vertices to re-simulate next round
    std::vector<VertexId> batch;       // this round's independent set
    std::vector<Simulation> sims;      // batch-parallel witness results
    while (remaining_vertices_ > 0) {
      ++round_;
      Timer round_timer;
      obs::ContractionRound row;
      row.round = round_;

      RefreshDirty(dirty, pool, &row);
      dirty.clear();

      for (VertexId v = 0; v < n_; ++v) {
        if (!contracted_[v]) priority_[v] = CachedPriority(v);
      }

      SelectBatch(&batch);
      PHAST_SPAN_ARG("ch.round", batch.size());
      row.batch = static_cast<uint32_t>(batch.size());

      RunBatchWitnessSearches(batch, pool, &sims, &row);

      // Deterministic merge: apply the batch in canonical order. This is
      // the only phase that mutates the dynamic graph.
      {
        PHAST_SPAN("ch.merge");
        const size_t shortcuts_before = total_shortcuts_;
        for (size_t i = 0; i < batch.size(); ++i) {
          const VertexId v = batch[i];
          const Simulation& sim = sims[i];
          Apply(v, sim, &ch);
          contracted_[v] = true;
          ch.rank[v] = next_rank++;
          ch.level[v] = level_[v];

          remaining_arcs_ += sim.shortcuts.size();
          remaining_arcs_ -= sim.arcs_removed;
          --remaining_vertices_;

          for (const VertexId u : UncontractedNeighbors(v)) {
            ++cn_[u];
            level_[u] = std::max(level_[u], level_[v] + 1);
            if (dirty_stamp_[u] != round_) {
              dirty_stamp_[u] = round_;
              dirty.push_back(u);
            }
          }
        }
        row.shortcuts = total_shortcuts_ - shortcuts_before;
      }

      row.nanos = static_cast<uint64_t>(round_timer.ElapsedSec() * 1e9);
      profile.rounds.push_back(row);
    }

    ch.num_shortcuts = total_shortcuts_;
    if (stats != nullptr) {
      stats->shortcuts_added = total_shortcuts_;
      stats->witness_searches = total_witness_searches_;
      stats->num_levels = ch.NumLevels();
      stats->rounds = profile.NumRounds();
      stats->seconds = timer.ElapsedSec();
      stats->profile = std::move(profile);
    }
    return ch;
  }

 private:
  /// Builds each thread's private witness workspace inside the team so the
  /// backing memory is touched (and, under first-touch NUMA policy, placed)
  /// by its owning thread.
  PHAST_OMP_REGION_NO_TSAN void InitWorkspaces(
      std::vector<WitnessWorkspace>& pool) {
    OmpExceptionGuard guard;
    Fence().Publish();
#pragma omp parallel num_threads(threads_) default(none) shared(pool, guard)
    {
      const OmpTeamFence::Scope scope(Fence());
      guard.Run([&] { pool[static_cast<size_t>(CurrentThread())].Init(n_); });
    }
    Fence().Collect();
    guard.Rethrow();
  }

  /// Simulates every vertex once, in parallel, to seed the ED/H priority
  /// terms; fills the profile's init witness counters.
  PHAST_OMP_REGION_NO_TSAN void ComputeInitialPriorities(
      std::vector<WitnessWorkspace>& pool, obs::ContractionProfile* profile) {
    std::vector<uint32_t> searches(n_, 0);
    std::vector<uint64_t> settled(n_, 0);
    OmpExceptionGuard guard;
    Fence().Publish();
#pragma omp parallel num_threads(threads_) default(none) \
    shared(pool, guard, searches, settled)
    {
      const OmpTeamFence::Scope scope(Fence());
      WitnessWorkspace& ws = pool[static_cast<size_t>(CurrentThread())];
#pragma omp for schedule(dynamic, 64)
      for (int64_t v = 0; v < static_cast<int64_t>(n_); ++v) {
        guard.Run([&] {
          const Simulation sim =
              Simulate(static_cast<VertexId>(v), ws, /*exclude_batch=*/false);
          cached_ed_[v] = sim.EdgeDifference();
          cached_h_[v] = sim.hop_sum;
          searches[v] = sim.witness_searches;
          settled[v] = sim.witness_settled;
        });
      }
    }
    Fence().Collect();
    guard.Rethrow();
    for (VertexId v = 0; v < n_; ++v) {
      profile->init_witness_searches += searches[v];
      profile->init_witness_settled += settled[v];
    }
  }

  /// Strict total order on uncontracted vertices: the contraction key.
  /// Using the id as tie-break makes local minima well-defined (no two
  /// adjacent vertices can both be minimal) and the whole run seedless-
  /// deterministic.
  [[nodiscard]] bool KeyLess(VertexId a, VertexId b) const {
    return priority_[a] != priority_[b] ? priority_[a] < priority_[b] : a < b;
  }

  /// Eager mode: re-simulate every vertex whose neighborhood changed in the
  /// previous round (parallel, pure per vertex). Lazy mode skips the
  /// simulations — ED/H stay at their initial estimates and only the CN and
  /// level terms (updated in the merge) move priorities.
  PHAST_OMP_REGION_NO_TSAN void RefreshDirty(
      const std::vector<VertexId>& dirty, std::vector<WitnessWorkspace>& pool,
      obs::ContractionRound* row) {
    if (!params_.eager_neighbor_updates || dirty.empty()) return;
    PHAST_SPAN_ARG("ch.refresh", dirty.size());
    row->refreshed = static_cast<uint32_t>(dirty.size());
    std::vector<uint32_t> searches(dirty.size(), 0);
    std::vector<uint64_t> settled(dirty.size(), 0);
    OmpExceptionGuard guard;
    Fence().Publish();
#pragma omp parallel num_threads(threads_) default(none) \
    shared(pool, guard, dirty, searches, settled)
    {
      const OmpTeamFence::Scope scope(Fence());
      WitnessWorkspace& ws = pool[static_cast<size_t>(CurrentThread())];
#pragma omp for schedule(dynamic, 16)
      for (int64_t i = 0; i < static_cast<int64_t>(dirty.size()); ++i) {
        guard.Run([&] {
          const VertexId v = dirty[static_cast<size_t>(i)];
          const Simulation sim = Simulate(v, ws, /*exclude_batch=*/false);
          cached_ed_[v] = sim.EdgeDifference();
          cached_h_[v] = sim.hop_sum;
          searches[i] = sim.witness_searches;
          settled[i] = sim.witness_settled;
        });
      }
    }
    Fence().Collect();
    guard.Rethrow();
    for (size_t i = 0; i < dirty.size(); ++i) {
      row->witness_searches += searches[i];
      row->witness_settled += settled[i];
      total_witness_searches_ += searches[i];
    }
  }

  /// Fills `batch` with the independent set of this round: every
  /// uncontracted vertex whose key is minimal within its 1-hop (or 2-hop)
  /// uncontracted neighborhood, sorted into canonical (priority, id) order.
  /// The parallel scan is read-only except for each vertex's own
  /// selected_ slot.
  PHAST_OMP_REGION_NO_TSAN void SelectBatch(std::vector<VertexId>* batch) {
    PHAST_SPAN("ch.select");
    OmpExceptionGuard guard;
    Fence().Publish();
#pragma omp parallel num_threads(threads_) default(none) shared(guard)
    {
      const OmpTeamFence::Scope scope(Fence());
#pragma omp for schedule(static)
      for (int64_t v64 = 0; v64 < static_cast<int64_t>(n_); ++v64) {
        guard.Run([&] {
          const VertexId v = static_cast<VertexId>(v64);
          selected_[v] = !contracted_[v] && IsLocalMinimum(v) ? 1 : 0;
        });
      }
    }
    Fence().Collect();
    guard.Rethrow();

    batch->clear();
    for (VertexId v = 0; v < n_; ++v) {
      if (selected_[v] != 0) batch->push_back(v);
    }
    std::sort(batch->begin(), batch->end(),
              [this](VertexId a, VertexId b) { return KeyLess(a, b); });
    for (const VertexId v : *batch) batch_stamp_[v] = round_;
  }

  /// True when v's key beats every uncontracted vertex within
  /// batch_neighborhood hops.
  [[nodiscard]] bool IsLocalMinimum(VertexId v) const {
    for (const std::vector<DynArc>* arcs : {&out_[v], &in_[v]}) {
      for (const DynArc& a : *arcs) {
        const VertexId u = a.other;
        if (contracted_[u] || u == v) continue;
        if (KeyLess(u, v)) return false;
        if (params_.batch_neighborhood >= 2 && !TwoHopMinimumThrough(v, u)) {
          return false;
        }
      }
    }
    return true;
  }

  /// 2-hop rule helper: v must also beat every uncontracted vertex reached
  /// through its uncontracted neighbor u.
  [[nodiscard]] bool TwoHopMinimumThrough(VertexId v, VertexId u) const {
    for (const std::vector<DynArc>* arcs : {&out_[u], &in_[u]}) {
      for (const DynArc& a : *arcs) {
        const VertexId w = a.other;
        if (contracted_[w] || w == v || w == u) continue;
        if (KeyLess(w, v)) return false;
      }
    }
    return true;
  }

  /// Witness phase: simulate every batch member in parallel, each with its
  /// earlier-key batch peers excluded from the searches (see ExcludedFor).
  /// Results land in per-index slots.
  PHAST_OMP_REGION_NO_TSAN void RunBatchWitnessSearches(
      const std::vector<VertexId>& batch, std::vector<WitnessWorkspace>& pool,
      std::vector<Simulation>* sims, obs::ContractionRound* row) {
    PHAST_SPAN_ARG("ch.witness", batch.size());
    sims->clear();
    sims->resize(batch.size());
    OmpExceptionGuard guard;
    Fence().Publish();
#pragma omp parallel num_threads(threads_) default(none) \
    shared(pool, guard, batch, sims)
    {
      const OmpTeamFence::Scope scope(Fence());
      WitnessWorkspace& ws = pool[static_cast<size_t>(CurrentThread())];
#pragma omp for schedule(dynamic, 4)
      for (int64_t i = 0; i < static_cast<int64_t>(batch.size()); ++i) {
        guard.Run([&] {
          (*sims)[static_cast<size_t>(i)] = Simulate(
              batch[static_cast<size_t>(i)], ws, /*exclude_batch=*/true);
        });
      }
    }
    Fence().Collect();
    guard.Rethrow();
    for (const Simulation& sim : *sims) {
      row->witness_searches += sim.witness_searches;
      row->witness_settled += sim.witness_settled;
      total_witness_searches_ += sim.witness_searches;
    }
  }

  /// Current witness-search hop limit, from the average degree of the
  /// uncontracted graph (schedule of §VIII-A). 0 means unlimited. Stable
  /// within a round (the counters only move in the merge).
  [[nodiscard]] uint32_t CurrentHopLimit() const {
    if (remaining_vertices_ == 0) return 0;
    const double avg_degree = static_cast<double>(remaining_arcs_) /
                              static_cast<double>(remaining_vertices_);
    if (avg_degree <= params_.degree_threshold_low) {
      return params_.hop_limit_low;
    }
    if (avg_degree <= params_.degree_threshold_mid) {
      return params_.hop_limit_mid;
    }
    return 0;
  }

  /// Priority 2·ED + CN + H + 5·L with ED and H from the latest simulation
  /// of v (fresh each round in eager mode, initial estimates in lazy mode).
  [[nodiscard]] int64_t CachedPriority(VertexId v) const {
    return params_.ed_coefficient * cached_ed_[v] +
           params_.cn_coefficient * static_cast<int64_t>(cn_[v]) +
           params_.h_coefficient * static_cast<int64_t>(cached_h_[v]) +
           params_.level_coefficient * static_cast<int64_t>(level_[v]);
  }

  /// Distinct uncontracted neighbors of v (in- and out-, deduplicated).
  [[nodiscard]] std::vector<VertexId> UncontractedNeighbors(VertexId v) const {
    std::vector<VertexId> neighbors;
    for (const DynArc& a : out_[v]) {
      if (!contracted_[a.other]) neighbors.push_back(a.other);
    }
    for (const DynArc& a : in_[v]) {
      if (!contracted_[a.other]) neighbors.push_back(a.other);
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    return neighbors;
  }

  /// True when x must be treated as removed by a witness search run on
  /// behalf of batch member v: already contracted, or an earlier-key member
  /// of the round's batch. Excluding exactly the earlier-key members makes
  /// the search see the remaining graph at v's turn in the canonical merge
  /// order (minus the improving shortcuts earlier members may add, which
  /// only ever create *more* witnesses) — so every witness found is sound,
  /// and far fewer redundant shortcuts survive than under whole-batch
  /// exclusion.
  [[nodiscard]] bool ExcludedFor(VertexId x, VertexId v,
                                 bool exclude_batch) const {
    return contracted_[x] ||
           (exclude_batch && batch_stamp_[x] == round_ && KeyLess(x, v));
  }

  /// Witness search: Dijkstra from `source` in the uncontracted graph with
  /// `excluded` (and, when `exclude_batch`, its earlier-key batch peers)
  /// removed, pruned at `bound`, `hop_limit` (0 = none), the configured
  /// settle cap, and early exit once all targets pre-marked in
  /// ws.target_version are settled. Results are in ws.dist for
  /// ws.current_version. Returns the number of settled vertices. Hitting
  /// the settle cap mid-search is always witness-sound: unsettled targets
  /// read as +inf, so the caller keeps their shortcuts (redundant at
  /// worst, never missing).
  uint32_t RunWitnessSearch(VertexId source, VertexId excluded, Weight bound,
                            uint32_t hop_limit,
                            std::span<const VertexId> targets,
                            bool exclude_batch, WitnessWorkspace& ws) {
    ++ws.current_version;
    for (const VertexId t : targets) ws.target_version[t] = ws.current_version;
    ws.heap.clear();
    ws.dist[source] = 0;
    ws.version[source] = ws.current_version;
    ws.Push(0, 0, source);
    uint32_t settled = 0;
    uint32_t targets_left = static_cast<uint32_t>(targets.size());
    while (!ws.heap.empty()) {
      const auto [d, hops, v] = ws.Pop();
      if (d > bound) break;
      if (d > ws.dist[v]) continue;  // lazy duplicate
      if (ws.target_version[v] == ws.current_version) {
        ws.target_version[v] = 0;  // count each target once
        if (--targets_left == 0) {
          ++settled;
          break;
        }
      }
      if (params_.max_witness_settled != 0 &&
          ++settled > params_.max_witness_settled) {
        break;
      }
      if (hop_limit != 0 && hops >= hop_limit) continue;
      for (const DynArc& a : out_[v]) {
        if (a.other == excluded ||
            ExcludedFor(a.other, excluded, exclude_batch)) {
          continue;
        }
        const Weight candidate = SaturatingAdd(d, a.weight);
        if (candidate > bound) continue;  // can never refute a shortcut
        if (ws.version[a.other] != ws.current_version ||
            candidate < ws.dist[a.other]) {
          ws.dist[a.other] = candidate;
          ws.version[a.other] = ws.current_version;
          ws.Push(candidate, hops + 1, a.other);
        }
      }
    }
    return settled;
  }

  [[nodiscard]] Weight WitnessDistance(VertexId v,
                                       const WitnessWorkspace& ws) const {
    return ws.version[v] == ws.current_version ? ws.dist[v] : kInfWeight;
  }

  /// Simulates the contraction of v: counts removable arcs and collects the
  /// witness-checked shortcuts it would create. Pure (no graph mutation)
  /// and thread-safe given a private workspace — every parallel phase runs
  /// this. With `exclude_batch` the searches treat the round's whole batch
  /// as removed (the witness phase); without it only v is excluded (the
  /// priority-estimate phases).
  Simulation Simulate(VertexId v, WitnessWorkspace& ws, bool exclude_batch) {
    Simulation sim;
    const uint32_t hop_limit = CurrentHopLimit();

    for (const DynArc& in_arc : in_[v]) {
      if (!contracted_[in_arc.other]) ++sim.arcs_removed;
    }
    for (const DynArc& out_arc : out_[v]) {
      if (!contracted_[out_arc.other]) ++sim.arcs_removed;
    }

    std::vector<VertexId> targets;
    for (const DynArc& in_arc : in_[v]) {
      const VertexId u = in_arc.other;
      if (contracted_[u]) continue;

      if (params_.witness_pruning) {
        // The witness bound covers the most expensive u -> v -> w pair.
        Weight bound = 0;
        targets.clear();
        for (const DynArc& out_arc : out_[v]) {
          if (contracted_[out_arc.other] || out_arc.other == u) continue;
          bound = std::max(bound, SaturatingAdd(in_arc.weight, out_arc.weight));
          targets.push_back(out_arc.other);
        }
        if (targets.empty()) continue;

        ++sim.witness_searches;
        sim.witness_settled += RunWitnessSearch(u, v, bound, hop_limit, targets,
                                                exclude_batch, ws);
      }

      for (const DynArc& out_arc : out_[v]) {
        const VertexId w = out_arc.other;
        if (contracted_[w] || w == u) continue;
        const Weight through_v = SaturatingAdd(in_arc.weight, out_arc.weight);
        if (params_.witness_pruning &&
            WitnessDistance(w, ws) <= through_v) {
          continue;  // witness found
        }

        sim.shortcuts.push_back(PendingShortcut{
            u, w, through_v, in_arc.hops + out_arc.hops});
        // Customizable mode keeps priorities metric-independent: hops move
        // only when AddOrImproveArc sees a strictly better weight, so the
        // H(u) term would tie contraction order to the build metric.
        if (params_.witness_pruning) {
          sim.hop_sum += std::min(in_arc.hops, params_.h_per_arc_cap) +
                         std::min(out_arc.hops, params_.h_per_arc_cap);
        }
      }
    }
    return sim;
  }

  /// Contracts v using the shortcut list its batch-excluding simulation
  /// discovered (batch members are pairwise non-adjacent, so v's arc lists
  /// have not changed since), then emits v's incident arcs: v gets the
  /// lowest remaining rank, so (u, v) with u uncontracted is a downward arc
  /// of the final hierarchy and (v, w) an upward arc.
  void Apply(VertexId v, const Simulation& sim, CHData* ch) {
    for (const PendingShortcut& s : sim.shortcuts) {
      AddOrImproveArc(s.tail, s.head, s.weight, v, s.hops);
      ++total_shortcuts_;
    }
    for (const DynArc& in_arc : in_[v]) {
      if (contracted_[in_arc.other]) continue;
      ch->down_arcs.push_back(
          CHArc{in_arc.other, v, in_arc.weight, in_arc.via});
    }
    for (const DynArc& out_arc : out_[v]) {
      if (contracted_[out_arc.other]) continue;
      ch->up_arcs.push_back(
          CHArc{v, out_arc.other, out_arc.weight, out_arc.via});
    }
  }

  /// Inserts arc (u, w) or lowers the weight of the existing one. The
  /// dynamic graph never holds parallel arcs, so linear scans stay cheap.
  void AddOrImproveArc(VertexId u, VertexId w, Weight weight, VertexId via,
                       uint32_t hops) {
    for (DynArc& a : out_[u]) {
      if (a.other == w) {
        if (weight < a.weight) {
          a.weight = weight;
          a.via = via;
          a.hops = hops;
          for (DynArc& b : in_[w]) {
            if (b.other == u) {
              b.weight = weight;
              b.via = via;
              b.hops = hops;
              break;
            }
          }
        }
        return;
      }
    }
    out_[u].push_back(DynArc{w, weight, via, hops});
    in_[w].push_back(DynArc{u, weight, via, hops});
  }

  CHParams params_;
  VertexId n_;
  int threads_ = 1;
  std::vector<std::vector<DynArc>> out_;
  std::vector<std::vector<DynArc>> in_;
  std::vector<bool> contracted_;
  std::vector<uint32_t> cn_;     // contracted-neighbors count
  std::vector<uint32_t> level_;  // tentative level during contraction
  std::vector<int64_t> cached_ed_;   // ED(u) from the latest simulation
  std::vector<uint32_t> cached_h_;   // H(u) from the latest simulation
  std::vector<int64_t> priority_;    // this round's priority snapshot
  std::vector<uint8_t> selected_;    // this round's local-minimum marks
  std::vector<uint32_t> batch_stamp_;  // round number when last in a batch
  std::vector<uint32_t> dirty_stamp_;  // round number when last marked dirty
  uint32_t round_ = 0;
  uint64_t remaining_arcs_ = 0;
  VertexId remaining_vertices_ = 0;
  size_t total_shortcuts_ = 0;
  size_t total_witness_searches_ = 0;
};

}  // namespace

CHData BuildContractionHierarchy(const Graph& graph, const CHParams& params,
                                 CHStats* stats) {
  Require(graph.NumVertices() > 0, "cannot contract an empty graph");
  Require(params.batch_neighborhood == 1 || params.batch_neighborhood == 2,
          "CHParams::batch_neighborhood must be 1 or 2");
  Contractor contractor(graph, params);
  return contractor.Run(stats);
}

}  // namespace phast

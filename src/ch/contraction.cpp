#include "ch/contraction.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <span>
#include <tuple>
#include <vector>

#include "obs/trace.h"
#include "util/error.h"
#include "util/omp_env.h"
#include "util/timer.h"

namespace phast {
namespace {

/// Arc of the dynamic graph maintained during contraction. `hops` is the
/// number of original arcs the arc represents (1 for original arcs), used
/// by the H(u) priority term.
struct DynArc {
  VertexId other;
  Weight weight;
  VertexId via;
  uint32_t hops;
};

/// A witness-checked shortcut found by simulation, applied only if the
/// simulated vertex actually gets contracted.
struct PendingShortcut {
  VertexId tail;
  VertexId head;
  Weight weight;
  uint32_t hops;
};

/// Outcome of simulating the contraction of one vertex.
struct Simulation {
  std::vector<PendingShortcut> shortcuts;
  uint32_t arcs_removed = 0;
  uint32_t hop_sum = 0;  // H(u) term, per-arc capped

  [[nodiscard]] int64_t EdgeDifference() const {
    return static_cast<int64_t>(shortcuts.size()) -
           static_cast<int64_t>(arcs_removed);
  }
};

/// Scratch space for witness searches. Versioned distance labels avoid an
/// O(n) reset per search, and the small binary heap reuses its backing
/// vector across the millions of searches one preprocessing run performs;
/// each thread computing initial priorities owns one workspace.
struct WitnessWorkspace {
  struct HeapEntry {
    Weight dist;
    uint32_t hops;
    VertexId vertex;
  };

  std::vector<Weight> dist;
  std::vector<uint32_t> version;
  uint32_t current_version = 0;
  std::vector<HeapEntry> heap;
  // Version-stamped target marks: the search stops early once every target
  // of the current shortcut test has been settled.
  std::vector<uint32_t> target_version;

  void Init(VertexId n) {
    dist.assign(n, kInfWeight);
    version.assign(n, 0);
    current_version = 0;
    heap.clear();
    heap.reserve(64);
    target_version.assign(n, 0);
  }

  void Push(Weight d, uint32_t hops, VertexId v) {
    heap.push_back(HeapEntry{d, hops, v});
    size_t i = heap.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (heap[parent].dist <= heap[i].dist) break;
      std::swap(heap[parent], heap[i]);
      i = parent;
    }
  }

  HeapEntry Pop() {
    const HeapEntry top = heap.front();
    heap.front() = heap.back();
    heap.pop_back();
    size_t i = 0;
    while (true) {
      const size_t left = 2 * i + 1;
      if (left >= heap.size()) break;
      size_t best = left;
      if (left + 1 < heap.size() && heap[left + 1].dist < heap[left].dist) {
        best = left + 1;
      }
      if (heap[i].dist <= heap[best].dist) break;
      std::swap(heap[i], heap[best]);
      i = best;
    }
    return top;
  }
};

class Contractor {
 public:
  Contractor(const Graph& graph, const CHParams& params)
      : params_(params), n_(graph.NumVertices()) {
    out_.resize(n_);
    in_.resize(n_);
    for (VertexId v = 0; v < n_; ++v) {
      for (const Arc& a : graph.ArcsOf(v)) {
        out_[v].push_back(DynArc{a.other, a.weight, kInvalidVertex, 1});
        in_[a.other].push_back(DynArc{v, a.weight, kInvalidVertex, 1});
      }
    }
    contracted_.assign(n_, false);
    cn_.assign(n_, 0);
    level_.assign(n_, 0);
    cached_ed_.assign(n_, 0);
    cached_h_.assign(n_, 0);
    remaining_arcs_ = graph.NumArcs();
    remaining_vertices_ = n_;
  }

  CHData Run(CHStats* stats) {
    PHAST_SPAN("ch.contract");
    Timer timer;
    CHData ch;
    ch.num_vertices = n_;
    ch.rank.assign(n_, 0);
    ch.level.assign(n_, 0);

    // Initial priorities, computed in parallel with per-thread workspaces
    // (the paper parallelizes priority updates the same way, §VIII-A).
    {
      PHAST_SPAN("ch.initial_priorities");
      std::vector<WitnessWorkspace> pool(
          static_cast<size_t>(std::max(1, MaxThreads())));
      // Threads share the workspace pool (one slot per thread id) and the
      // disjoint cached_ed_/cached_h_ slots; the guard keeps an allocation
      // failure in Init/Simulate from escaping the region.
      OmpExceptionGuard guard;
#pragma omp parallel default(none) shared(pool, guard)
      {
        WitnessWorkspace& ws = pool[static_cast<size_t>(CurrentThread())];
        guard.Run([&] { ws.Init(n_); });
#pragma omp for schedule(dynamic, 64)
        for (int64_t v = 0; v < static_cast<int64_t>(n_); ++v) {
          guard.Run([&] {
            const Simulation sim = Simulate(static_cast<VertexId>(v), ws);
            cached_ed_[v] = sim.EdgeDifference();
            cached_h_[v] = sim.hop_sum;
          });
        }
      }
      guard.Rethrow();
    }
    workspace_.Init(n_);

    // Min-heap of (priority, vertex) with lazy re-evaluation at pop:
    // contracting a vertex only pushes cheap cache-based refreshes for its
    // neighbors; the full (witness-search) recomputation happens once, at
    // pop time, and doubles as the contraction's shortcut discovery.
    using HeapEntry = std::pair<int64_t, VertexId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    for (VertexId v = 0; v < n_; ++v) heap.push({CachedPriority(v), v});

    uint32_t next_rank = 0;
    while (!heap.empty()) {
      const auto [stale_priority, v] = heap.top();
      heap.pop();
      if (contracted_[v]) continue;
      // Cheap staleness filter before the expensive simulation.
      if (stale_priority < CachedPriority(v)) {
        heap.push({CachedPriority(v), v});
        continue;
      }

      const Simulation sim = Simulate(v, workspace_);
      cached_ed_[v] = sim.EdgeDifference();
      cached_h_[v] = sim.hop_sum;
      const int64_t fresh_priority = CachedPriority(v);
      if (!heap.empty() && fresh_priority > heap.top().first) {
        heap.push({fresh_priority, v});
        continue;
      }

      Apply(v, sim, &ch);
      contracted_[v] = true;
      ch.rank[v] = next_rank++;
      ch.level[v] = level_[v];

      remaining_arcs_ += sim.shortcuts.size();
      remaining_arcs_ -= sim.arcs_removed;
      --remaining_vertices_;

      // Refresh the neighbors' priorities. CN and level always update;
      // eager mode also re-runs their simulations (the paper's policy),
      // lazy mode defers ED/H to their own pops.
      for (const VertexId u : UncontractedNeighbors(v)) {
        ++cn_[u];
        level_[u] = std::max(level_[u], level_[v] + 1);
        if (params_.eager_neighbor_updates) {
          const Simulation neighbor_sim = Simulate(u, workspace_);
          cached_ed_[u] = neighbor_sim.EdgeDifference();
          cached_h_[u] = neighbor_sim.hop_sum;
        }
        heap.push({CachedPriority(u), u});
      }
    }

    ch.num_shortcuts = total_shortcuts_;
    if (stats != nullptr) {
      stats->shortcuts_added = total_shortcuts_;
      stats->witness_searches = witness_searches_;
      stats->num_levels = ch.NumLevels();
      stats->seconds = timer.ElapsedSec();
    }
    return ch;
  }

 private:
  /// Current witness-search hop limit, from the average degree of the
  /// uncontracted graph (schedule of §VIII-A). 0 means unlimited.
  [[nodiscard]] uint32_t CurrentHopLimit() const {
    if (remaining_vertices_ == 0) return 0;
    const double avg_degree = static_cast<double>(remaining_arcs_) /
                              static_cast<double>(remaining_vertices_);
    if (avg_degree <= params_.degree_threshold_low) {
      return params_.hop_limit_low;
    }
    if (avg_degree <= params_.degree_threshold_mid) {
      return params_.hop_limit_mid;
    }
    return 0;
  }

  /// Priority 2·ED + CN + H + 5·L with ED and H from the latest simulation
  /// of v (exact at pop time, possibly stale in between).
  [[nodiscard]] int64_t CachedPriority(VertexId v) const {
    return params_.ed_coefficient * cached_ed_[v] +
           params_.cn_coefficient * static_cast<int64_t>(cn_[v]) +
           params_.h_coefficient * static_cast<int64_t>(cached_h_[v]) +
           params_.level_coefficient * static_cast<int64_t>(level_[v]);
  }

  /// Distinct uncontracted neighbors of v (in- and out-, deduplicated).
  [[nodiscard]] std::vector<VertexId> UncontractedNeighbors(VertexId v) const {
    std::vector<VertexId> neighbors;
    for (const DynArc& a : out_[v]) {
      if (!contracted_[a.other]) neighbors.push_back(a.other);
    }
    for (const DynArc& a : in_[v]) {
      if (!contracted_[a.other]) neighbors.push_back(a.other);
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    return neighbors;
  }

  /// Witness search: Dijkstra from `source` in the uncontracted graph with
  /// `excluded` removed, pruned at `bound`, `hop_limit` (0 = none), the
  /// configured settle cap, and early exit once all `num_targets` vertices
  /// pre-marked in ws.target_version are settled. Results are in ws.dist
  /// for ws.current_version.
  void RunWitnessSearch(VertexId source, VertexId excluded, Weight bound,
                        uint32_t hop_limit, std::span<const VertexId> targets,
                        WitnessWorkspace& ws) {
    witness_searches_.fetch_add(1, std::memory_order_relaxed);
    ++ws.current_version;
    for (const VertexId t : targets) ws.target_version[t] = ws.current_version;
    ws.heap.clear();
    ws.dist[source] = 0;
    ws.version[source] = ws.current_version;
    ws.Push(0, 0, source);
    uint32_t settled = 0;
    uint32_t targets_left = static_cast<uint32_t>(targets.size());
    while (!ws.heap.empty()) {
      const auto [d, hops, v] = ws.Pop();
      if (d > bound) break;
      if (d > ws.dist[v]) continue;  // lazy duplicate
      if (ws.target_version[v] == ws.current_version) {
        ws.target_version[v] = 0;  // count each target once
        if (--targets_left == 0) break;
      }
      if (params_.max_witness_settled != 0 &&
          ++settled > params_.max_witness_settled) {
        break;
      }
      if (hop_limit != 0 && hops >= hop_limit) continue;
      for (const DynArc& a : out_[v]) {
        if (contracted_[a.other] || a.other == excluded) continue;
        const Weight candidate = SaturatingAdd(d, a.weight);
        if (candidate > bound) continue;  // can never refute a shortcut
        if (ws.version[a.other] != ws.current_version ||
            candidate < ws.dist[a.other]) {
          ws.dist[a.other] = candidate;
          ws.version[a.other] = ws.current_version;
          ws.Push(candidate, hops + 1, a.other);
        }
      }
    }
  }

  [[nodiscard]] Weight WitnessDistance(VertexId v,
                                       const WitnessWorkspace& ws) const {
    return ws.version[v] == ws.current_version ? ws.dist[v] : kInfWeight;
  }

  /// Simulates the contraction of v: counts removable arcs and collects the
  /// witness-checked shortcuts it would create. Pure (no graph mutation);
  /// thread-safe given a private workspace, which is what lets the initial
  /// priority pass run under OpenMP.
  Simulation Simulate(VertexId v, WitnessWorkspace& ws) {
    Simulation sim;
    const uint32_t hop_limit = CurrentHopLimit();

    for (const DynArc& in_arc : in_[v]) {
      if (!contracted_[in_arc.other]) ++sim.arcs_removed;
    }
    for (const DynArc& out_arc : out_[v]) {
      if (!contracted_[out_arc.other]) ++sim.arcs_removed;
    }

    std::vector<VertexId> targets;
    for (const DynArc& in_arc : in_[v]) {
      const VertexId u = in_arc.other;
      if (contracted_[u]) continue;

      // The witness bound covers the most expensive u -> v -> w pair.
      Weight bound = 0;
      targets.clear();
      for (const DynArc& out_arc : out_[v]) {
        if (contracted_[out_arc.other] || out_arc.other == u) continue;
        bound = std::max(bound, SaturatingAdd(in_arc.weight, out_arc.weight));
        targets.push_back(out_arc.other);
      }
      if (targets.empty()) continue;

      RunWitnessSearch(u, v, bound, hop_limit, targets, ws);

      for (const DynArc& out_arc : out_[v]) {
        const VertexId w = out_arc.other;
        if (contracted_[w] || w == u) continue;
        const Weight through_v = SaturatingAdd(in_arc.weight, out_arc.weight);
        if (WitnessDistance(w, ws) <= through_v) continue;  // witness found

        sim.shortcuts.push_back(PendingShortcut{
            u, w, through_v, in_arc.hops + out_arc.hops});
        sim.hop_sum += std::min(in_arc.hops, params_.h_per_arc_cap) +
                       std::min(out_arc.hops, params_.h_per_arc_cap);
      }
    }
    return sim;
  }

  /// Contracts v using the shortcut list its simulation discovered (the
  /// graph has not changed in between), then emits v's incident arcs: v
  /// gets the lowest remaining rank, so (u, v) with u uncontracted is a
  /// downward arc of the final hierarchy and (v, w) an upward arc.
  void Apply(VertexId v, const Simulation& sim, CHData* ch) {
    for (const PendingShortcut& s : sim.shortcuts) {
      AddOrImproveArc(s.tail, s.head, s.weight, v, s.hops);
      ++total_shortcuts_;
    }
    for (const DynArc& in_arc : in_[v]) {
      if (contracted_[in_arc.other]) continue;
      ch->down_arcs.push_back(
          CHArc{in_arc.other, v, in_arc.weight, in_arc.via});
    }
    for (const DynArc& out_arc : out_[v]) {
      if (contracted_[out_arc.other]) continue;
      ch->up_arcs.push_back(
          CHArc{v, out_arc.other, out_arc.weight, out_arc.via});
    }
  }

  /// Inserts arc (u, w) or lowers the weight of the existing one. The
  /// dynamic graph never holds parallel arcs, so linear scans stay cheap.
  void AddOrImproveArc(VertexId u, VertexId w, Weight weight, VertexId via,
                       uint32_t hops) {
    for (DynArc& a : out_[u]) {
      if (a.other == w) {
        if (weight < a.weight) {
          a.weight = weight;
          a.via = via;
          a.hops = hops;
          for (DynArc& b : in_[w]) {
            if (b.other == u) {
              b.weight = weight;
              b.via = via;
              b.hops = hops;
              break;
            }
          }
        }
        return;
      }
    }
    out_[u].push_back(DynArc{w, weight, via, hops});
    in_[w].push_back(DynArc{u, weight, via, hops});
  }

  CHParams params_;
  VertexId n_;
  std::vector<std::vector<DynArc>> out_;
  std::vector<std::vector<DynArc>> in_;
  std::vector<bool> contracted_;
  std::vector<uint32_t> cn_;     // contracted-neighbors count
  std::vector<uint32_t> level_;  // tentative level during contraction
  std::vector<int64_t> cached_ed_;   // ED(u) from the latest simulation
  std::vector<uint32_t> cached_h_;   // H(u) from the latest simulation
  uint64_t remaining_arcs_ = 0;
  VertexId remaining_vertices_ = 0;
  WitnessWorkspace workspace_;
  size_t total_shortcuts_ = 0;
  // Atomic: the initial priority pass simulates vertices in parallel.
  std::atomic<size_t> witness_searches_{0};
};

}  // namespace

CHData BuildContractionHierarchy(const Graph& graph, const CHParams& params,
                                 CHStats* stats) {
  Require(graph.NumVertices() > 0, "cannot contract an empty graph");
  Contractor contractor(graph, params);
  return contractor.Run(stats);
}

}  // namespace phast

#include "ch/query.h"

#include <algorithm>

#include "pq/dary_heap.h"
#include "util/error.h"

namespace phast {

CHQuery::CHQuery(const CHData& ch)
    : n_(ch.num_vertices),
      rank_(ch.rank),
      up_(SearchGraph::Forward(ch.num_vertices, ch.up_arcs)),
      down_reverse_(SearchGraph::Reverse(ch.num_vertices, ch.down_arcs)),
      down_forward_(SearchGraph::Forward(ch.num_vertices, ch.down_arcs)) {
  forward_.Init(n_);
  backward_.Init(n_);
}

Weight CHQuery::Distance(VertexId s, VertexId t) {
  return Query(s, t, /*want_path=*/false).dist;
}

PointToPointResult CHQuery::Query(VertexId s, VertexId t, bool want_path) {
  Require(s < n_ && t < n_, "CH query endpoint out of range");
  PointToPointResult result;
  if (s == t) {
    result.dist = 0;
    if (want_path) result.path = {s};
    return result;
  }

  forward_.NewSearch();
  backward_.NewSearch();
  BinaryHeap queue_f(n_), queue_b(n_);
  forward_.Set(s, 0, kInvalidVertex);
  queue_f.Update(s, 0);
  backward_.Set(t, 0, kInvalidVertex);
  queue_b.Update(t, 0);

  Weight mu = kInfWeight;
  VertexId meet = kInvalidVertex;

  // Each search stops independently once its queue minimum reaches µ
  // (§II-B); unlike plain bidirectional Dijkstra, both searches must run
  // that far because the meeting vertex is the *highest-ranked* vertex of
  // the shortest path, not the midpoint.
  const auto scan = [&](BinaryHeap& queue, SearchState& mine,
                        const SearchState& theirs, const SearchGraph& graph) {
    const auto [v, key] = queue.ExtractMin();
    ++result.scanned;
    if (key > mine.Dist(v)) return;  // stale after re-labeling
    if (theirs.Dist(v) != kInfWeight) {
      const Weight through = SaturatingAdd(key, theirs.Dist(v));
      if (through < mu) {
        mu = through;
        meet = v;
      }
    }
    for (const Arc& arc : graph.ArcsOf(v)) {
      const Weight candidate = SaturatingAdd(key, arc.weight);
      if (candidate < mine.Dist(arc.other)) {
        mine.Set(arc.other, candidate, v);
        queue.Update(arc.other, candidate);
      }
    }
  };

  while (true) {
    const bool forward_active = !queue_f.Empty() && queue_f.MinKey() < mu;
    const bool backward_active = !queue_b.Empty() && queue_b.MinKey() < mu;
    if (!forward_active && !backward_active) break;
    if (forward_active &&
        (!backward_active || queue_f.MinKey() <= queue_b.MinKey())) {
      scan(queue_f, forward_, backward_, up_);
    } else {
      scan(queue_b, backward_, forward_, down_reverse_);
    }
  }

  result.dist = mu;
  if (mu == kInfWeight || !want_path) return result;

  // Path in G+: s -> ... -> meet (upward), then meet -> ... -> t (downward,
  // recorded by the backward search in reverse).
  std::vector<VertexId> gplus_path;
  for (VertexId v = meet; v != kInvalidVertex; v = forward_.parent[v]) {
    gplus_path.push_back(v);
    if (v == s) break;
  }
  std::reverse(gplus_path.begin(), gplus_path.end());
  for (VertexId v = backward_.parent[meet]; v != kInvalidVertex;
       v = backward_.parent[v]) {
    gplus_path.push_back(v);
    if (v == t) break;
  }

  // Expand shortcuts into the original graph (§VII-A): time proportional
  // to the number of original arcs on the path.
  result.path = {gplus_path.front()};
  for (size_t i = 0; i + 1 < gplus_path.size(); ++i) {
    UnpackArc(gplus_path[i], gplus_path[i + 1], &result.path);
  }
  return result;
}

void CHQuery::UpwardSearch(
    VertexId s, std::vector<std::pair<VertexId, Weight>>* search_space) {
  Require(s < n_, "upward-search source out of range");
  forward_.NewSearch();
  BinaryHeap queue(n_);
  forward_.Set(s, 0, kInvalidVertex);
  queue.Update(s, 0);
  while (!queue.Empty()) {
    const auto [v, key] = queue.ExtractMin();
    search_space->emplace_back(v, key);
    for (const Arc& arc : up_.ArcsOf(v)) {
      const Weight candidate = SaturatingAdd(key, arc.weight);
      if (candidate < forward_.Dist(arc.other)) {
        forward_.Set(arc.other, candidate, v);
        queue.Update(arc.other, candidate);
      }
    }
  }
}

double CHQuery::AverageUpwardSearchSpace(const std::vector<VertexId>& sources) {
  Require(!sources.empty(), "need at least one source");
  size_t total = 0;
  std::vector<std::pair<VertexId, Weight>> space;
  for (const VertexId s : sources) {
    space.clear();
    UpwardSearch(s, &space);
    total += space.size();
  }
  return static_cast<double>(total) / static_cast<double>(sources.size());
}

bool CHQuery::LookupArc(VertexId a, VertexId b, Weight* weight,
                        VertexId* via) const {
  // Shortcut middle vertices have lower rank than both endpoints, so the
  // direction set of (a, b) is determined by the rank comparison.
  if (rank_[a] < rank_[b]) return up_.FindArc(a, b, weight, via);
  return down_forward_.FindArc(a, b, weight, via);
}

void CHQuery::UnpackArc(VertexId a, VertexId b,
                        std::vector<VertexId>* out) const {
  Weight weight = 0;
  VertexId via = kInvalidVertex;
  const bool found = LookupArc(a, b, &weight, &via);
  Require(found, "G+ path refers to a missing CH arc");
  if (via == kInvalidVertex) {
    out->push_back(b);  // original arc
    return;
  }
  UnpackArc(a, via, out);
  UnpackArc(via, b, out);
}

}  // namespace phast

#include "ch/ch_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/error.h"

namespace phast {
namespace {

constexpr char kMagic[8] = {'P', 'H', 'A', 'S', 'T', 'C', 'H', '1'};

template <typename T>
void WriteValue(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& values) {
  WriteValue<uint64_t>(out, values.size());
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
T ReadValue(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  Require(in.good(), "truncated CH file");
  return value;
}

template <typename T>
std::vector<T> ReadVector(std::istream& in, uint64_t max_elements) {
  const uint64_t count = ReadValue<uint64_t>(in);
  Require(count <= max_elements, "CH file declares an implausible size");
  std::vector<T> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  Require(in.good() || count == 0, "truncated CH file");
  return values;
}

}  // namespace

void WriteCH(const CHData& ch, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteValue<uint32_t>(out, ch.num_vertices);
  WriteValue<uint64_t>(out, ch.num_shortcuts);
  WriteVector(out, ch.rank);
  WriteVector(out, ch.level);
  WriteVector(out, ch.up_arcs);
  WriteVector(out, ch.down_arcs);
}

void WriteCHFile(const CHData& ch, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  Require(out.good(), "cannot open file for writing: " + path);
  WriteCH(ch, out);
  Require(out.good(), "error while writing: " + path);
}

CHData ReadCH(std::istream& in) {
  char magic[sizeof(kMagic)] = {};
  in.read(magic, sizeof(magic));
  Require(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
          "not a PHAST CH file (bad magic)");

  CHData ch;
  ch.num_vertices = ReadValue<uint32_t>(in);
  ch.num_shortcuts = ReadValue<uint64_t>(in);
  // Sanity cap: no more arcs than a complete graph, no more rank entries
  // than vertices.
  const uint64_t max_arcs = 1ull << 36;
  ch.rank = ReadVector<uint32_t>(in, ch.num_vertices);
  ch.level = ReadVector<uint32_t>(in, ch.num_vertices);
  ch.up_arcs = ReadVector<CHArc>(in, max_arcs);
  ch.down_arcs = ReadVector<CHArc>(in, max_arcs);

  Require(ch.rank.size() == ch.num_vertices &&
              ch.level.size() == ch.num_vertices,
          "CH file arrays do not match the vertex count");
  for (const CHArc& a : ch.up_arcs) {
    Require(a.tail < ch.num_vertices && a.head < ch.num_vertices &&
                (a.via == kInvalidVertex || a.via < ch.num_vertices),
            "CH file contains out-of-range vertex ids");
    Require(ch.rank[a.tail] < ch.rank[a.head],
            "CH file upward arc violates rank order");
  }
  for (const CHArc& a : ch.down_arcs) {
    Require(a.tail < ch.num_vertices && a.head < ch.num_vertices &&
                (a.via == kInvalidVertex || a.via < ch.num_vertices),
            "CH file contains out-of-range vertex ids");
    Require(ch.rank[a.tail] > ch.rank[a.head],
            "CH file downward arc violates rank order");
  }
  return ch;
}

CHData ReadCHFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  Require(in.good(), "cannot open file for reading: " + path);
  return ReadCH(in);
}

}  // namespace phast

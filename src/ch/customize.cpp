// Metric customization over a fixed CH topology (DESIGN.md §10).
//
// The pass mirrors what a witness-free contraction of the re-weighted graph
// would compute, without contracting anything:
//
//   reset   every arc's state becomes "no candidate yet"; arcs present in
//           the metric graph are seeded with their new original weight
//   index   arcs are bucketed three ways by topology only: down-arcs by
//           head, up-arcs by tail (both keyed by the arc's minimum-rank
//           endpoint, the via vertex that relaxes through it), and all arcs
//           by (tail, head) for the triangle target lookup
//   relax   via vertices are processed level by level, ascending; within a
//           level, in parallel. Via v relaxes arc (u, w) with
//           SaturatingAdd(w(u,v), w(v,w)) for every down-arc (u, v) and
//           up-arc (v, w) pair.
//
// Why per-level passes are safe and deterministic: an arc's minimum-rank
// endpoint x satisfies L(x) > L(v) for every via v that relaxes the arc (v
// is adjacent to x and was contracted first), so a via only *writes* arcs
// whose own relaxation runs in a strictly later level group, and only
// *reads* arcs (its incident ones) whose writers all ran in strictly
// earlier groups. Two same-level vias may still relax the same upper arc
// concurrently; those writes merge through an atomic 64-bit min whose
// result is the minimum over a thread-order-independent candidate set —
// bit-identical for every thread count, like contraction (DESIGN.md §9).
//
// The packed 64-bit state, (weight << 32) | via_code, makes that single min
// reproduce the rebuild's weight *and* via tie-breaking: via_code 0 is the
// original arc (so on equal weight the original wins and via stays
// kInvalidVertex, matching AddOrImproveArc's strict-improvement rule) and
// via_code rank(v)+1 orders equal-weight shortcut candidates by contraction
// rank, matching the canonical order in which a rebuild would have offered
// them.
#include "ch/customize.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "graph/types.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/omp_env.h"
#include "util/timer.h"

namespace phast {
namespace {

/// TSan-visible ordering edges for the OpenMP regions (see util/omp_env.h);
/// function-local so region bodies reach it without reading shared state.
OmpTeamFence& Fence() {
  static OmpTeamFence fence;
  return fence;
}

constexpr uint64_t kNoCandidate = ~uint64_t{0};

uint64_t Pack(Weight weight, uint32_t via_code) {
  return (static_cast<uint64_t>(weight) << 32) | via_code;
}

/// Deterministic concurrent min: the final value is min over all published
/// candidates regardless of interleaving.
void AtomicFetchMin(uint64_t& state, uint64_t candidate) {
  std::atomic_ref<uint64_t> ref(state);
  uint64_t current = ref.load(std::memory_order_relaxed);
  while (candidate < current &&
         !ref.compare_exchange_weak(current, candidate,
                                    std::memory_order_relaxed)) {
  }
}

/// One (head, slot) entry of the per-tail lookup index.
struct HeadSlot {
  VertexId head;
  uint32_t slot;
};

class Customizer {
 public:
  Customizer(CHData& ch, const Graph& weights, const CustomizeOptions& options)
      : ch_(ch), weights_(weights), n_(ch.num_vertices) {
    threads_ = options.threads != 0 ? static_cast<int>(options.threads)
                                    : std::max(1, MaxThreads());
  }

  void Run(CustomizeStats* stats) {
    PHAST_SPAN("ch.customize");
    const Timer total;
    Require(n_ > 0, "cannot customize an empty hierarchy");
    Require(ch_.rank.size() == n_ && ch_.level.size() == n_,
            "CHData arrays have inconsistent sizes");
    Require(weights_.NumVertices() == n_,
            "customization metric graph has " +
                std::to_string(weights_.NumVertices()) +
                " vertices, the hierarchy has " + std::to_string(n_));

    obs::CustomizeProfile profile;
    profile.threads = static_cast<uint32_t>(threads_);

    const size_t num_up = ch_.up_arcs.size();
    const size_t slots = num_up + ch_.down_arcs.size();
    state_.assign(slots, kNoCandidate);

    {
      PHAST_SPAN("ch.customize.index");
      const Timer index_timer;
      BuildIndexes();
      profile.index_nanos =
          static_cast<uint64_t>(index_timer.ElapsedSec() * 1e9);
    }

    size_t original_arcs = 0;
    {
      PHAST_SPAN("ch.customize.reset");
      const Timer reset_timer;
      original_arcs = SeedOriginalArcs();
      profile.reset_nanos =
          static_cast<uint64_t>(reset_timer.ElapsedSec() * 1e9);
    }

    const uint64_t triangles = RelaxLevels(&profile);
    WriteBack();

    if (stats != nullptr) {
      stats->arcs = slots;
      stats->original_arcs = original_arcs;
      stats->triangles_relaxed = triangles;
      stats->levels = profile.NumLevels();
      stats->seconds = total.ElapsedSec();
      stats->profile = std::move(profile);
    }
  }

 private:
  [[nodiscard]] Weight StateWeight(uint32_t slot) const {
    return static_cast<Weight>(state_[slot] >> 32);
  }

  /// Slot of arc (tail, head) in the combined up+down arc space, or
  /// kInvalidSlot when G+ has no such arc.
  static constexpr uint32_t kInvalidSlot = ~uint32_t{0};
  [[nodiscard]] uint32_t SlotOf(VertexId tail, VertexId head) const {
    const auto begin = lookup_.begin() + lookup_first_[tail];
    const auto end = lookup_.begin() + lookup_first_[tail + 1];
    const auto it = std::lower_bound(
        begin, end, head,
        [](const HeadSlot& entry, VertexId h) { return entry.head < h; });
    if (it == end || it->head != head) return kInvalidSlot;
    return it->slot;
  }

  /// Buckets the arcs by via vertex (their minimum-rank endpoint) and
  /// builds the per-tail (head -> slot) lookup. Topology only — reusable
  /// across metrics, rebuilt per run for simplicity.
  void BuildIndexes() {
    const size_t num_up = ch_.up_arcs.size();
    const size_t slots = num_up + ch_.down_arcs.size();

    // Down arcs (u, v) with rank(u) > rank(v), grouped by their head v;
    // up arcs (v, w) grouped by their tail v.
    down_in_first_.assign(static_cast<size_t>(n_) + 1, 0);
    for (const CHArc& a : ch_.down_arcs) ++down_in_first_[a.head + 1];
    up_out_first_.assign(static_cast<size_t>(n_) + 1, 0);
    for (const CHArc& a : ch_.up_arcs) ++up_out_first_[a.tail + 1];
    lookup_first_.assign(static_cast<size_t>(n_) + 1, 0);
    for (const CHArc& a : ch_.up_arcs) ++lookup_first_[a.tail + 1];
    for (const CHArc& a : ch_.down_arcs) ++lookup_first_[a.tail + 1];
    for (size_t v = 1; v <= n_; ++v) {
      down_in_first_[v] += down_in_first_[v - 1];
      up_out_first_[v] += up_out_first_[v - 1];
      lookup_first_[v] += lookup_first_[v - 1];
    }

    down_in_slots_.resize(ch_.down_arcs.size());
    up_out_slots_.resize(num_up);
    lookup_.resize(slots);
    {
      std::vector<uint32_t> down_cursor(down_in_first_.begin(),
                                        down_in_first_.end() - 1);
      std::vector<uint32_t> up_cursor(up_out_first_.begin(),
                                      up_out_first_.end() - 1);
      std::vector<uint32_t> lookup_cursor(lookup_first_.begin(),
                                          lookup_first_.end() - 1);
      for (size_t i = 0; i < num_up; ++i) {
        const CHArc& a = ch_.up_arcs[i];
        const uint32_t slot = static_cast<uint32_t>(i);
        up_out_slots_[up_cursor[a.tail]++] = slot;
        lookup_[lookup_cursor[a.tail]++] = HeadSlot{a.head, slot};
      }
      for (size_t i = 0; i < ch_.down_arcs.size(); ++i) {
        const CHArc& a = ch_.down_arcs[i];
        const uint32_t slot = static_cast<uint32_t>(num_up + i);
        down_in_slots_[down_cursor[a.head]++] = slot;
        lookup_[lookup_cursor[a.tail]++] = HeadSlot{a.head, slot};
      }
    }
    for (VertexId v = 0; v < n_; ++v) {
      std::sort(lookup_.begin() + lookup_first_[v],
                lookup_.begin() + lookup_first_[v + 1],
                [](const HeadSlot& a, const HeadSlot& b) {
                  return a.head < b.head;
                });
    }
  }

  /// Seeds every arc present in the metric graph with its new weight
  /// (via_code 0: the original-arc candidate). Returns the arc count.
  size_t SeedOriginalArcs() {
    size_t seeded = 0;
    for (VertexId u = 0; u < n_; ++u) {
      for (const Arc& a : weights_.ArcsOf(u)) {
        const uint32_t slot = SlotOf(u, a.other);
        Require(slot != kInvalidSlot,
                "customization metric graph has arc (" + std::to_string(u) +
                    ", " + std::to_string(a.other) +
                    ") which the hierarchy lacks — the hierarchy must be "
                    "built from a graph with the same topology");
        Require(state_[slot] == kNoCandidate,
                "customization metric graph has parallel arcs (" +
                    std::to_string(u) + ", " + std::to_string(a.other) +
                    "); Normalize() the edge list first");
        state_[slot] = Pack(a.weight, 0);
        ++seeded;
      }
    }
    return seeded;
  }

  /// Relaxes one via vertex: every (down-in, up-out) pair becomes a
  /// lower-triangle candidate for the upper arc it spans. Returns the
  /// number of triangles enumerated.
  uint64_t RelaxVertex(VertexId v) {
    uint64_t triangles = 0;
    const uint32_t via_code = ch_.rank[v] + 1;
    for (uint32_t di = down_in_first_[v]; di < down_in_first_[v + 1]; ++di) {
      const uint32_t in_slot = down_in_slots_[di];
      const VertexId u = ch_.down_arcs[in_slot - ch_.up_arcs.size()].tail;
      const Weight w_in = StateWeight(in_slot);
      for (uint32_t ui = up_out_first_[v]; ui < up_out_first_[v + 1]; ++ui) {
        const uint32_t out_slot = up_out_slots_[ui];
        const CHArc& out_arc = ch_.up_arcs[out_slot];
        const VertexId w = out_arc.head;
        if (w == u) continue;
        const uint32_t target = SlotOf(u, w);
        Require(target != kInvalidSlot,
                "hierarchy is not triangle-closed at via " +
                    std::to_string(v) + " (missing arc " + std::to_string(u) +
                    " -> " + std::to_string(w) +
                    "): build it with CHParams::witness_pruning = false to "
                    "customize");
        ++triangles;
        const Weight through_v = SaturatingAdd(w_in, StateWeight(out_slot));
        AtomicFetchMin(state_[target], Pack(through_v, via_code));
      }
    }
    return triangles;
  }

  /// Ascending level groups, each one parallel pass with a barrier (the
  /// region join) before the next. Returns total triangles.
  uint64_t RelaxLevels(obs::CustomizeProfile* profile) {
    // Bucket vertices by level, ascending.
    const uint32_t num_levels = ch_.NumLevels();
    std::vector<uint32_t> level_first(static_cast<size_t>(num_levels) + 1, 0);
    for (VertexId v = 0; v < n_; ++v) ++level_first[ch_.level[v] + 1];
    for (size_t l = 1; l <= num_levels; ++l) {
      level_first[l] += level_first[l - 1];
    }
    std::vector<VertexId> by_level(n_);
    {
      std::vector<uint32_t> cursor(level_first.begin(), level_first.end() - 1);
      for (VertexId v = 0; v < n_; ++v) by_level[cursor[ch_.level[v]]++] = v;
    }

    uint64_t total_triangles = 0;
    for (uint32_t l = 0; l < num_levels; ++l) {
      const Timer level_timer;
      const uint32_t begin = level_first[l];
      const uint32_t end = level_first[l + 1];
      PHAST_SPAN_ARG("ch.customize.level", end - begin);
      const uint64_t triangles = RelaxLevelGroup(by_level, begin, end);
      total_triangles += triangles;
      obs::CustomizeLevel row;
      row.level = l;
      row.vertices = end - begin;
      row.triangles = triangles;
      row.nanos = static_cast<uint64_t>(level_timer.ElapsedSec() * 1e9);
      profile->levels.push_back(row);
    }
    return total_triangles;
  }

  /// One level group. Small groups run serially (identical result — the
  /// atomic min commutes — without the region spawn cost).
  PHAST_OMP_REGION_NO_TSAN uint64_t RelaxLevelGroup(
      const std::vector<VertexId>& by_level, uint32_t begin, uint32_t end) {
    if (threads_ == 1 || end - begin < 128) {
      uint64_t triangles = 0;
      for (uint32_t i = begin; i < end; ++i) {
        triangles += RelaxVertex(by_level[i]);
      }
      return triangles;
    }
    std::atomic<uint64_t> triangles{0};
    OmpExceptionGuard guard;
    Fence().Publish();
#pragma omp parallel num_threads(threads_) default(none) \
    shared(by_level, begin, end, guard, triangles)
    {
      const OmpTeamFence::Scope scope(Fence());
      uint64_t local = 0;
#pragma omp for schedule(dynamic, 32)
      for (int64_t i = begin; i < static_cast<int64_t>(end); ++i) {
        guard.Run(
            [&] { local += RelaxVertex(by_level[static_cast<size_t>(i)]); });
      }
      triangles.fetch_add(local, std::memory_order_relaxed);
    }
    Fence().Collect();
    guard.Rethrow();
    return triangles.load(std::memory_order_relaxed);
  }

  /// Unpacks the final states into the CHData arcs. A state no candidate
  /// ever reached means the metric graph is missing an arc of the build
  /// graph (the converse topology error to the SeedOriginalArcs check).
  void WriteBack() {
    std::vector<VertexId> vertex_of_rank(n_);
    for (VertexId v = 0; v < n_; ++v) vertex_of_rank[ch_.rank[v]] = v;
    const size_t num_up = ch_.up_arcs.size();
    for (size_t slot = 0; slot < state_.size(); ++slot) {
      CHArc& arc = slot < num_up ? ch_.up_arcs[slot]
                                 : ch_.down_arcs[slot - num_up];
      const uint64_t state = state_[slot];
      Require(state != kNoCandidate,
              "customization metric graph is missing arc (" +
                  std::to_string(arc.tail) + ", " + std::to_string(arc.head) +
                  ") of the hierarchy's build graph");
      arc.weight = static_cast<Weight>(state >> 32);
      const uint32_t via_code = static_cast<uint32_t>(state);
      arc.via = via_code == 0 ? kInvalidVertex : vertex_of_rank[via_code - 1];
    }
  }

  CHData& ch_;
  const Graph& weights_;
  VertexId n_;
  int threads_ = 1;

  /// Per-arc packed (weight << 32 | via_code) relaxation state; slot i is
  /// up_arcs[i], slot up_arcs.size()+j is down_arcs[j].
  std::vector<uint64_t> state_;

  std::vector<uint32_t> down_in_first_;   // down arcs by head (n+1 offsets)
  std::vector<uint32_t> down_in_slots_;
  std::vector<uint32_t> up_out_first_;    // up arcs by tail (n+1 offsets)
  std::vector<uint32_t> up_out_slots_;
  std::vector<uint32_t> lookup_first_;    // all arcs by tail, head-sorted
  std::vector<HeadSlot> lookup_;
};

}  // namespace

void CustomizeWeights(CHData& ch, const Graph& weights,
                      const CustomizeOptions& options, CustomizeStats* stats) {
  Customizer customizer(ch, weights, options);
  customizer.Run(stats);
}

}  // namespace phast

#pragma once

#include <vector>

#include "ch/ch_data.h"
#include "ch/search_graph.h"
#include "dijkstra/bidirectional.h"
#include "graph/types.h"

namespace phast {

/// Point-to-point queries on a contraction hierarchy (§II-B): bidirectional
/// Dijkstra where the forward search uses only upward arcs and the backward
/// search only downward arcs, both stopping once their queue minimum
/// reaches the best meeting value µ.
///
/// Also exposes the target-independent upward search (forward CH search run
/// until the queue empties) that forms phase one of every PHAST query.
///
/// Query methods use internal versioned workspaces, so a CHQuery instance
/// is cheap to reuse across queries but is not thread-safe; use one
/// instance per thread.
class CHQuery {
 public:
  explicit CHQuery(const CHData& ch);

  /// Shortest-path distance s -> t in the original graph (kInfWeight if
  /// unreachable).
  [[nodiscard]] Weight Distance(VertexId s, VertexId t);

  /// Distance plus the fully unpacked path in the original graph.
  [[nodiscard]] PointToPointResult Query(VertexId s, VertexId t,
                                         bool want_path = true);

  /// Phase one of PHAST (§III): Dijkstra from s restricted to upward arcs,
  /// run until the queue is empty. Appends (vertex, label) pairs of every
  /// visited vertex to `search_space`; labels are upper bounds on the true
  /// distances (exact for the topmost vertex of each shortest path).
  void UpwardSearch(VertexId s,
                    std::vector<std::pair<VertexId, Weight>>* search_space);

  [[nodiscard]] const SearchGraph& UpGraph() const { return up_; }
  [[nodiscard]] const std::vector<uint32_t>& Ranks() const { return rank_; }

  /// Average number of vertices visited by UpwardSearch over the given
  /// sources — the paper quotes ~500 for Europe (§II-B).
  [[nodiscard]] double AverageUpwardSearchSpace(
      const std::vector<VertexId>& sources);

 private:
  struct SearchState {
    std::vector<Weight> dist;
    std::vector<VertexId> parent;
    std::vector<uint32_t> version;
    uint32_t current = 0;

    void Init(VertexId n) {
      dist.assign(n, kInfWeight);
      parent.assign(n, kInvalidVertex);
      version.assign(n, 0);
      current = 0;
    }
    void NewSearch() { ++current; }
    [[nodiscard]] Weight Dist(VertexId v) const {
      return version[v] == current ? dist[v] : kInfWeight;
    }
    void Set(VertexId v, Weight d, VertexId p) {
      dist[v] = d;
      parent[v] = p;
      version[v] = current;
    }
  };

  /// Expands one G+ arc (a, b) into original-graph vertices, appending all
  /// vertices strictly after `a` up to and including `b`.
  void UnpackArc(VertexId a, VertexId b, std::vector<VertexId>* out) const;

  /// Looks up the cheapest CH arc a -> b regardless of direction set.
  [[nodiscard]] bool LookupArc(VertexId a, VertexId b, Weight* weight,
                               VertexId* via) const;

  VertexId n_;
  std::vector<uint32_t> rank_;
  SearchGraph up_;            // forward search graph
  SearchGraph down_reverse_;  // backward search graph (A↓ reversed)
  SearchGraph down_forward_;  // A↓ keyed by tail, for unpacking lookups
  SearchState forward_;
  SearchState backward_;
};

}  // namespace phast

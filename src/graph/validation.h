#pragma once

#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// Structural diagnostics for an input network, for tools that ingest
/// third-party DIMACS files before handing them to PHAST.
struct GraphDiagnostics {
  VertexId num_vertices = 0;
  size_t num_arcs = 0;
  size_t self_loops = 0;
  size_t parallel_arcs = 0;
  size_t zero_weight_arcs = 0;
  size_t asymmetric_arcs = 0;  // arcs whose reverse (same weight) is absent
  Weight max_weight = 0;
  uint32_t max_out_degree = 0;
  size_t isolated_vertices = 0;

  /// True when the graph is ready for the full pipeline without caveats:
  /// no self-loops or parallels (Normalize() removes them) and strictly
  /// positive weights (required by tree extraction and reach).
  [[nodiscard]] bool CleanForPipeline() const {
    return self_loops == 0 && parallel_arcs == 0 && zero_weight_arcs == 0;
  }

  [[nodiscard]] std::string Summary() const;
};

[[nodiscard]] GraphDiagnostics DiagnoseGraph(const EdgeList& edges);

}  // namespace phast

#pragma once

#include <vector>

#include "graph/csr.h"
#include "graph/dimacs.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// Strongly connected components: component[v] is a dense id in
/// [0, num_components); ids are assigned in (reverse) topological order of
/// the component DAG by Tarjan's algorithm, but callers should not rely on
/// that.
struct SccResult {
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
};

/// Iterative Tarjan SCC (no recursion — road networks would overflow the
/// stack).
[[nodiscard]] SccResult StronglyConnectedComponents(const Graph& graph);

/// Result of restricting a graph to a vertex subset.
struct SubgraphResult {
  EdgeList edges;
  /// old vertex id -> new id, or kInvalidVertex if dropped.
  std::vector<VertexId> old_to_new;
  /// new vertex id -> old id.
  std::vector<VertexId> new_to_old;
};

/// Keeps only vertices of the largest SCC (ties broken by smallest
/// component id) and the arcs among them, relabeling vertices densely.
/// Generators produce graphs with dead ends; PHAST/CH assume strong
/// connectivity for meaningful all-pairs work, so drivers run this first.
[[nodiscard]] SubgraphResult LargestStronglyConnectedComponent(
    const EdgeList& edges);

/// Projects coordinates through a SubgraphResult mapping.
[[nodiscard]] Coordinates RestrictCoordinates(const Coordinates& coords,
                                              const SubgraphResult& sub);

}  // namespace phast

#include "graph/csr.h"

#include <algorithm>

#include "util/error.h"

namespace phast {

Graph Graph::Build(VertexId n, const std::vector<Edge>& edges, bool reverse) {
  Graph g;
  g.first_.assign(static_cast<size_t>(n) + 1, 0);
  g.arcs_.resize(edges.size());

  // Counting sort by the keying endpoint keeps construction O(n + m).
  for (const Edge& e : edges) {
    const VertexId key = reverse ? e.head : e.tail;
    ++g.first_[key + 1];
  }
  for (size_t v = 1; v <= n; ++v) g.first_[v] += g.first_[v - 1];

  std::vector<ArcId> cursor(g.first_.begin(), g.first_.end() - 1);
  for (const Edge& e : edges) {
    const VertexId key = reverse ? e.head : e.tail;
    const VertexId other = reverse ? e.tail : e.head;
    g.arcs_[cursor[key]++] = Arc{other, e.weight};
  }

  // Deterministic arc order within each vertex regardless of input order.
  for (VertexId v = 0; v < n; ++v) {
    std::sort(g.arcs_.begin() + g.first_[v], g.arcs_.begin() + g.first_[v + 1],
              [](const Arc& a, const Arc& b) {
                return a.other != b.other ? a.other < b.other
                                          : a.weight < b.weight;
              });
  }
  return g;
}

Graph Graph::FromEdgeList(const EdgeList& edges) {
  return Build(edges.NumVertices(), edges.Edges(), /*reverse=*/false);
}

Graph Graph::ReverseFromEdgeList(const EdgeList& edges) {
  return Build(edges.NumVertices(), edges.Edges(), /*reverse=*/true);
}

Graph Graph::FromCsrArrays(std::vector<ArcId> first, std::vector<Arc> arcs) {
  Require(!first.empty(), "CSR offset array must have at least the sentinel");
  Require(first.front() == 0 && first.back() == arcs.size(),
          "CSR offset array must start at 0 and end at the arc count");
  for (size_t i = 0; i + 1 < first.size(); ++i) {
    Require(first[i] <= first[i + 1],
            "CSR offset array must be non-decreasing");
  }
  const VertexId n = static_cast<VertexId>(first.size() - 1);
  for (const Arc& a : arcs) {
    Require(a.other < n, "CSR arc endpoint out of range");
  }
  Graph g;
  g.first_ = std::move(first);
  g.arcs_ = std::move(arcs);
  return g;
}

Graph Graph::Reversed() const {
  EdgeList reversed(NumVertices());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (const Arc& a : ArcsOf(v)) {
      reversed.AddArc(a.other, v, a.weight);
    }
  }
  return FromEdgeList(reversed);
}

EdgeList Graph::ToEdgeList() const {
  EdgeList out(NumVertices());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (const Arc& a : ArcsOf(v)) {
      out.AddArc(v, a.other, a.weight);
    }
  }
  return out;
}

}  // namespace phast

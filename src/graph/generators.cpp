#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace phast {
namespace {

// Converts a Euclidean length (in abstract position units) and a speed
// multiplier into an integer arc weight for the requested metric. Weights
// are scaled so that typical local arcs are a few hundred units, which keeps
// path lengths well below the 32-bit saturation point for the graph sizes we
// generate.
Weight ArcWeight(double euclid, double speed, Metric metric) {
  const double scaled = metric == Metric::kTravelTime ? euclid / speed : euclid;
  return static_cast<Weight>(
      std::max<int64_t>(1, std::llround(scaled * 100.0)));
}

double Euclid(const Coordinates& coords, VertexId u, VertexId v) {
  const double dx = static_cast<double>(coords.x[u] - coords.x[v]);
  const double dy = static_cast<double>(coords.y[u] - coords.y[v]);
  return std::sqrt(dx * dx + dy * dy) / 1000.0;
}

}  // namespace

GeneratedGraph GenerateCountry(const CountryParams& params) {
  Require(params.width >= 2 && params.height >= 2,
          "country grid must be at least 2x2");
  Require(params.highway_stride >= 2, "highway stride must be >= 2");
  const uint32_t w = params.width;
  const uint32_t h = params.height;
  const VertexId n = w * h;
  Rng rng(params.seed);

  GeneratedGraph out;
  out.edges.EnsureVertices(n);
  out.coords.x.resize(n);
  out.coords.y.resize(n);

  const auto vertex = [w](uint32_t x, uint32_t y) -> VertexId {
    return y * w + x;
  };

  // Vertex positions: grid cell centers with jitter, in milli-units.
  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      const double jx = (rng.NextDouble() - 0.5) * params.jitter;
      const double jy = (rng.NextDouble() - 0.5) * params.jitter;
      out.coords.x[vertex(x, y)] =
          static_cast<int64_t>(std::llround((x + jx) * 1000.0));
      out.coords.y[vertex(x, y)] =
          static_cast<int64_t>(std::llround((y + jy) * 1000.0));
    }
  }

  const auto add_road = [&](VertexId u, VertexId v, double speed) {
    const Weight wgt =
        ArcWeight(Euclid(out.coords, u, v), speed, params.metric);
    out.edges.AddBidirectional(u, v, wgt);
  };

  // Local roads: 4-neighborhood with random deletions plus occasional
  // diagonals.
  for (uint32_t y = 0; y < h; ++y) {
    for (uint32_t x = 0; x < w; ++x) {
      if (x + 1 < w && !rng.NextBool(params.deletion_prob)) {
        add_road(vertex(x, y), vertex(x + 1, y), 1.0);
      }
      if (y + 1 < h && !rng.NextBool(params.deletion_prob)) {
        add_road(vertex(x, y), vertex(x, y + 1), 1.0);
      }
      if (x + 1 < w && y + 1 < h && rng.NextBool(params.diagonal_prob)) {
        add_road(vertex(x, y), vertex(x + 1, y + 1), 1.0);
      }
    }
  }

  // Highway hierarchy: level-i roads connect every stride^i-th grid point
  // along rows and columns at compounded speed. This produces the small set
  // of "important" vertices hitting all long shortest paths that low highway
  // dimension requires (paper §II-B).
  double speed = 1.0;
  for (uint64_t stride = params.highway_stride;
       stride < std::max(w, h); stride *= params.highway_stride) {
    speed *= params.highway_speedup;
    for (uint64_t y = 0; y < h; y += stride) {
      for (uint64_t x = 0; x + stride < w; x += stride) {
        add_road(vertex(static_cast<uint32_t>(x), static_cast<uint32_t>(y)),
                 vertex(static_cast<uint32_t>(x + stride),
                        static_cast<uint32_t>(y)),
                 speed);
      }
    }
    for (uint64_t x = 0; x < w; x += stride) {
      for (uint64_t y = 0; y + stride < h; y += stride) {
        add_road(vertex(static_cast<uint32_t>(x), static_cast<uint32_t>(y)),
                 vertex(static_cast<uint32_t>(x),
                        static_cast<uint32_t>(y + stride)),
                 speed);
      }
    }
  }

  out.edges.Normalize();
  return out;
}

GeneratedGraph GenerateRandomGeometric(uint32_t n, double radius,
                                       uint64_t seed) {
  Require(n >= 1, "need at least one vertex");
  Require(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
  Rng rng(seed);

  GeneratedGraph out;
  out.edges.EnsureVertices(n);
  out.coords.x.resize(n);
  out.coords.y.resize(n);
  std::vector<double> px(n), py(n);
  for (VertexId v = 0; v < n; ++v) {
    px[v] = rng.NextDouble();
    py[v] = rng.NextDouble();
    out.coords.x[v] = static_cast<int64_t>(std::llround(px[v] * 1e6));
    out.coords.y[v] = static_cast<int64_t>(std::llround(py[v] * 1e6));
  }

  // Spatial hashing: only compare points in neighboring buckets.
  const uint32_t buckets = std::max(1u, static_cast<uint32_t>(1.0 / radius));
  std::vector<std::vector<VertexId>> grid(
      static_cast<size_t>(buckets) * buckets);
  const auto bucket_of = [&](double p) {
    return std::min(buckets - 1, static_cast<uint32_t>(p * buckets));
  };
  for (VertexId v = 0; v < n; ++v) {
    grid[static_cast<size_t>(bucket_of(py[v])) * buckets + bucket_of(px[v])]
        .push_back(v);
  }

  for (VertexId u = 0; u < n; ++u) {
    const uint32_t bx = bucket_of(px[u]);
    const uint32_t by = bucket_of(py[u]);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int64_t nx = static_cast<int64_t>(bx) + dx;
        const int64_t ny = static_cast<int64_t>(by) + dy;
        if (nx < 0 || ny < 0 || nx >= buckets || ny >= buckets) continue;
        for (VertexId v :
             grid[static_cast<size_t>(ny) * buckets + static_cast<size_t>(nx)]) {
          if (v <= u) continue;  // add each pair once
          const double dxp = px[u] - px[v];
          const double dyp = py[u] - py[v];
          const double dist = std::sqrt(dxp * dxp + dyp * dyp);
          if (dist <= radius) {
            const Weight wgt = static_cast<Weight>(
                std::max<int64_t>(1, std::llround(dist * 1e5)));
            out.edges.AddBidirectional(u, v, wgt);
          }
        }
      }
    }
  }
  out.edges.Normalize();
  return out;
}

EdgeList GenerateGnm(uint32_t n, uint64_t m, Weight max_weight, uint64_t seed) {
  Require(n >= 2, "G(n,m) needs at least two vertices");
  Require(max_weight >= 1, "max_weight must be >= 1");
  Rng rng(seed);
  EdgeList edges(n);
  for (uint64_t i = 0; i < m; ++i) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
    VertexId v = static_cast<VertexId>(rng.NextBounded(n - 1));
    if (v >= u) ++v;  // avoid self-loops without rejection sampling
    edges.AddArc(u, v, static_cast<Weight>(1 + rng.NextBounded(max_weight)));
  }
  edges.Normalize();
  return edges;
}

EdgeList GeneratePath(uint32_t n, Weight step) {
  EdgeList edges(n);
  for (VertexId v = 0; v + 1 < n; ++v) edges.AddBidirectional(v, v + 1, step);
  return edges;
}

EdgeList GenerateCycle(uint32_t n, Weight step) {
  Require(n >= 3, "cycle needs at least three vertices");
  EdgeList edges = GeneratePath(n, step);
  edges.AddBidirectional(n - 1, 0, step);
  return edges;
}

EdgeList GenerateStar(uint32_t leaves, Weight spoke) {
  EdgeList edges(leaves + 1);
  for (VertexId leaf = 1; leaf <= leaves; ++leaf) {
    edges.AddBidirectional(0, leaf, spoke);
  }
  return edges;
}

EdgeList GenerateGrid(uint32_t width, uint32_t height, Weight step) {
  EdgeList edges(width * height);
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      const VertexId v = y * width + x;
      if (x + 1 < width) edges.AddBidirectional(v, v + 1, step);
      if (y + 1 < height) edges.AddBidirectional(v, v + width, step);
    }
  }
  return edges;
}

EdgeList GenerateComplete(uint32_t n, Weight weight) {
  EdgeList edges(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.AddArc(u, v, weight);
    }
  }
  return edges;
}

}  // namespace phast

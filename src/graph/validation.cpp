#include "graph/validation.h"

#include <algorithm>
#include <cstdio>

namespace phast {

GraphDiagnostics DiagnoseGraph(const EdgeList& edges) {
  GraphDiagnostics d;
  d.num_vertices = edges.NumVertices();
  d.num_arcs = edges.NumArcs();

  // Work on a sorted copy so parallels and reverses are found by search.
  std::vector<Edge> sorted = edges.Edges();
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    if (a.tail != b.tail) return a.tail < b.tail;
    if (a.head != b.head) return a.head < b.head;
    return a.weight < b.weight;
  });

  std::vector<uint32_t> out_degree(d.num_vertices, 0);
  std::vector<bool> touched(d.num_vertices, false);
  for (size_t i = 0; i < sorted.size(); ++i) {
    const Edge& e = sorted[i];
    if (e.tail == e.head) ++d.self_loops;
    if (e.weight == 0) ++d.zero_weight_arcs;
    d.max_weight = std::max(d.max_weight, e.weight);
    ++out_degree[e.tail];
    touched[e.tail] = touched[e.head] = true;
    if (i > 0 && sorted[i - 1].tail == e.tail && sorted[i - 1].head == e.head) {
      ++d.parallel_arcs;
    }
    // Reverse arc with identical weight present?
    const Edge reverse{e.head, e.tail, e.weight};
    if (!std::binary_search(
            sorted.begin(), sorted.end(), reverse,
            [](const Edge& a, const Edge& b) {
              if (a.tail != b.tail) return a.tail < b.tail;
              if (a.head != b.head) return a.head < b.head;
              return a.weight < b.weight;
            })) {
      ++d.asymmetric_arcs;
    }
  }
  for (VertexId v = 0; v < d.num_vertices; ++v) {
    d.max_out_degree = std::max(d.max_out_degree, out_degree[v]);
    if (!touched[v]) ++d.isolated_vertices;
  }
  return d;
}

std::string GraphDiagnostics::Summary() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "n=%u m=%zu maxw=%u maxdeg=%u loops=%zu parallel=%zu "
                "zero=%zu asym=%zu isolated=%zu%s",
                num_vertices, num_arcs, max_weight, max_out_degree,
                self_loops, parallel_arcs, zero_weight_arcs, asymmetric_arcs,
                isolated_vertices, CleanForPipeline() ? " [clean]" : "");
  return buffer;
}

}  // namespace phast

#include "graph/connectivity.h"

#include <algorithm>

#include "util/error.h"

namespace phast {

SccResult StronglyConnectedComponents(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  constexpr uint32_t kUnvisited = std::numeric_limits<uint32_t>::max();

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> scc_stack;
  uint32_t next_index = 0;

  // Explicit DFS frame: vertex plus the position of the next arc to explore.
  struct Frame {
    VertexId v;
    uint32_t arc_pos;
  };
  std::vector<Frame> dfs;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const VertexId v = frame.v;
      if (frame.arc_pos == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = true;
      }
      const auto arcs = graph.ArcsOf(v);
      bool descended = false;
      while (frame.arc_pos < arcs.size()) {
        const VertexId w = arcs[frame.arc_pos++].other;
        if (index[w] == kUnvisited) {
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;
      // v is finished: pop an SCC if v is a root, then propagate lowlink.
      if (lowlink[v] == index[v]) {
        while (true) {
          const VertexId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          result.component[w] = result.num_components;
          if (w == v) break;
        }
        ++result.num_components;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
      }
    }
  }
  return result;
}

SubgraphResult LargestStronglyConnectedComponent(const EdgeList& edges) {
  const Graph graph = Graph::FromEdgeList(edges);
  const SccResult scc = StronglyConnectedComponents(graph);
  const VertexId n = graph.NumVertices();

  SubgraphResult out;
  if (n == 0) return out;

  std::vector<uint64_t> size(scc.num_components, 0);
  for (VertexId v = 0; v < n; ++v) ++size[scc.component[v]];
  const uint32_t largest = static_cast<uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());

  out.old_to_new.assign(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    if (scc.component[v] == largest) {
      out.old_to_new[v] = static_cast<VertexId>(out.new_to_old.size());
      out.new_to_old.push_back(v);
    }
  }
  out.edges.EnsureVertices(static_cast<VertexId>(out.new_to_old.size()));
  for (const Edge& e : edges.Edges()) {
    const VertexId u = out.old_to_new[e.tail];
    const VertexId v = out.old_to_new[e.head];
    if (u != kInvalidVertex && v != kInvalidVertex) {
      out.edges.AddArc(u, v, e.weight);
    }
  }
  return out;
}

Coordinates RestrictCoordinates(const Coordinates& coords,
                                const SubgraphResult& sub) {
  Require(coords.Size() == sub.old_to_new.size(),
          "coordinate count does not match subgraph mapping");
  Coordinates out;
  out.x.reserve(sub.new_to_old.size());
  out.y.reserve(sub.new_to_old.size());
  for (const VertexId old_id : sub.new_to_old) {
    out.x.push_back(coords.x[old_id]);
    out.y.push_back(coords.y[old_id]);
  }
  return out;
}

}  // namespace phast

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// Vertex coordinates from a DIMACS .co file (or a generator). Units are
/// arbitrary; generators use integer micro-degrees like the challenge data.
struct Coordinates {
  std::vector<int64_t> x;
  std::vector<int64_t> y;

  [[nodiscard]] size_t Size() const { return x.size(); }
};

/// Reader/writer for the 9th DIMACS Implementation Challenge graph format —
/// the format of the Europe (PTV) and USA (TIGER/Line) road networks the
/// paper benchmarks on. Vertex IDs are 1-based in the file, 0-based in
/// memory.
///
/// .gr:  c <comment> | p sp <n> <m> | a <tail> <head> <weight>
/// .co:  c <comment> | p aux sp co <n> | v <id> <x> <y>

EdgeList ReadDimacsGraph(std::istream& in);
EdgeList ReadDimacsGraphFile(const std::string& path);

void WriteDimacsGraph(const EdgeList& graph, std::ostream& out);
void WriteDimacsGraphFile(const EdgeList& graph, const std::string& path);

Coordinates ReadDimacsCoordinates(std::istream& in);
Coordinates ReadDimacsCoordinatesFile(const std::string& path);

void WriteDimacsCoordinates(const Coordinates& coords, std::ostream& out);
void WriteDimacsCoordinatesFile(const Coordinates& coords,
                                const std::string& path);

}  // namespace phast

#pragma once

#include <cstdint>

#include "graph/dimacs.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// Arc-length semantics, mirroring the two DIMACS weightings the paper
/// evaluates (§VIII-G): travel time (strong road hierarchy — highways are
/// much "shorter") and travel distance (weak hierarchy — CH produces more
/// levels and shortcuts, PHAST gets slower).
enum class Metric {
  kTravelTime,
  kTravelDistance,
};

/// A generated network: directed arcs plus planar vertex coordinates.
struct GeneratedGraph {
  EdgeList edges;
  Coordinates coords;
};

/// Parameters for the synthetic-country generator (see GenerateCountry).
struct CountryParams {
  /// Grid dimensions; the graph has width*height vertices.
  uint32_t width = 64;
  uint32_t height = 64;
  /// Probability that a local grid edge is deleted (creates dead ends and
  /// irregular local topology, as in real road networks).
  double deletion_prob = 0.05;
  /// Probability of adding a diagonal local edge in a cell.
  double diagonal_prob = 0.10;
  /// Cell spacing between consecutive vertices of a level-i highway is
  /// highway_stride^i; levels are added while the stride fits the grid.
  uint32_t highway_stride = 4;
  /// Speed of a level-i road relative to a local road (compounded per
  /// level). Only affects Metric::kTravelTime.
  double highway_speedup = 2.0;
  /// Relative jitter applied to vertex positions within their grid cell.
  double jitter = 0.3;
  Metric metric = Metric::kTravelTime;
  uint64_t seed = 1;
};

/// Synthetic road network with the structural properties PHAST exploits:
/// near-planar local grid plus a nested highway hierarchy (low highway
/// dimension). All arcs are bidirectional with symmetric weights; the graph
/// may have dead ends after deletions, so callers normally extract the
/// largest strongly connected component.
GeneratedGraph GenerateCountry(const CountryParams& params);

/// Random geometric graph: n points uniform in the unit square, arcs between
/// all pairs within the given radius, weight = Euclidean distance (scaled to
/// integers). Bidirectional.
GeneratedGraph GenerateRandomGeometric(uint32_t n, double radius,
                                       uint64_t seed);

/// Erdős–Rényi style G(n, m) with uniform weights in [1, max_weight].
/// No structure for CH to exploit — used as an adversarial input in tests.
EdgeList GenerateGnm(uint32_t n, uint64_t m, Weight max_weight, uint64_t seed);

/// Deterministic small graphs for unit tests.
EdgeList GeneratePath(uint32_t n, Weight step = 1);
EdgeList GenerateCycle(uint32_t n, Weight step = 1);
EdgeList GenerateStar(uint32_t leaves, Weight spoke = 1);
EdgeList GenerateGrid(uint32_t width, uint32_t height, Weight step = 1);
EdgeList GenerateComplete(uint32_t n, Weight weight = 1);

}  // namespace phast

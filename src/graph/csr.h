#pragma once

#include <span>
#include <type_traits>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// One entry of the packed arc list: the endpoint on the far side of the arc
/// and the arc length. For a forward graph `other` is the head; for a
/// reverse graph it is the tail (paper §IV-A).
struct Arc {
  VertexId other = 0;
  Weight weight = 0;

  friend bool operator==(const Arc&, const Arc&) = default;
};

// Layout contracts for the sequential arc scan (§IV-A): the whole point of
// the first/arclist representation is that one cache line holds 8 packed
// arcs, and serialization memcpys arc arrays verbatim.
static_assert(std::is_trivially_copyable_v<Arc>,
              "Arc must stay memcpy-able (binary CH I/O writes arc arrays)");
static_assert(sizeof(Arc) == 8 && alignof(Arc) == 4,
              "Arc must pack to 8 bytes — padding would halve arc-scan "
              "bandwidth, the quantity PHAST's sweep is bound by");

/// Static directed graph in the cache-efficient `first`/`arclist`
/// representation of paper §IV-A.
///
/// `first[v]` is the index of v's first arc in `arcs`; v's arcs occupy
/// `arcs[first[v] .. first[v+1])`. A sentinel entry `first[n] == m` avoids
/// special cases. Whether `arcs` holds outgoing or incoming arcs is decided
/// at construction (FromEdgeList vs Reversed); the traversal code is
/// identical either way.
class Graph {
 public:
  Graph() { first_.push_back(0); }

  /// Builds a forward graph: arcs of v are its outgoing arcs, `Arc::other`
  /// is the head.
  static Graph FromEdgeList(const EdgeList& edges);

  /// Builds the reverse adjacency of `edges`: arcs of v are its *incoming*
  /// arcs, `Arc::other` is the tail.
  static Graph ReverseFromEdgeList(const EdgeList& edges);

  /// Adopts raw CSR arrays (snapshot loading; the inverse of
  /// FirstArray()/ArcArray()). Validates the representation invariants —
  /// `first` is a non-decreasing array of n+1 offsets whose sentinel equals
  /// arcs.size(), every endpoint is in range — and throws InputError on
  /// violation, so deserialized bytes cannot build a graph that faults on
  /// traversal.
  static Graph FromCsrArrays(std::vector<ArcId> first, std::vector<Arc> arcs);

  /// Reverse view of this graph (incoming becomes outgoing).
  [[nodiscard]] Graph Reversed() const;

  [[nodiscard]] VertexId NumVertices() const {
    return static_cast<VertexId>(first_.size() - 1);
  }
  [[nodiscard]] size_t NumArcs() const { return arcs_.size(); }

  [[nodiscard]] std::span<const Arc> ArcsOf(VertexId v) const {
    return {arcs_.data() + first_[v], arcs_.data() + first_[v + 1]};
  }

  [[nodiscard]] uint32_t Degree(VertexId v) const {
    return first_[v + 1] - first_[v];
  }

  [[nodiscard]] const std::vector<ArcId>& FirstArray() const { return first_; }
  [[nodiscard]] const std::vector<Arc>& ArcArray() const { return arcs_; }

  /// Converts back to an edge list (forward interpretation: Arc::other is
  /// the head).
  [[nodiscard]] EdgeList ToEdgeList() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  static Graph Build(VertexId n, const std::vector<Edge>& edges, bool reverse);

  std::vector<ArcId> first_;  // size n+1, sentinel at the end
  std::vector<Arc> arcs_;     // size m, grouped by vertex
};

}  // namespace phast

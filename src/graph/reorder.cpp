#include "graph/reorder.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast {

bool IsPermutation(std::span<const VertexId> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const VertexId v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

Permutation InvertPermutation(const Permutation& perm) {
  Permutation inverse(perm.size());
  for (VertexId old_id = 0; old_id < perm.size(); ++old_id) {
    inverse[perm[old_id]] = old_id;
  }
  return inverse;
}

Permutation IdentityPermutation(VertexId n) {
  Permutation perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  return perm;
}

Permutation RandomPermutation(VertexId n, uint64_t seed) {
  Permutation perm = IdentityPermutation(n);
  Rng rng(seed);
  Shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

Permutation DfsPermutation(const Graph& graph, VertexId root) {
  PHAST_SPAN("reorder.dfs_permutation");
  const VertexId n = graph.NumVertices();
  Require(n == 0 || root < n, "DFS root out of range");
  Permutation perm(n, kInvalidVertex);
  VertexId next_id = 0;
  std::vector<VertexId> stack;
  for (VertexId r = 0; r < n; ++r) {
    // First pass starts at the requested root; restarts sweep in ID order.
    const VertexId start = r == 0 ? root : (r <= root ? r - 1 : r);
    if (perm[start] != kInvalidVertex) continue;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      if (perm[v] != kInvalidVertex) continue;
      perm[v] = next_id++;  // DFS preorder: number at first visit
      const auto arcs = graph.ArcsOf(v);
      for (auto it = arcs.rbegin(); it != arcs.rend(); ++it) {
        if (perm[it->other] == kInvalidVertex) stack.push_back(it->other);
      }
    }
  }
  return perm;
}

Permutation LevelPermutation(const std::vector<uint32_t>& levels) {
  const VertexId n = static_cast<VertexId>(levels.size());
  Permutation by_level = IdentityPermutation(n);
  // Stable sort keeps ascending-ID order within each level.
  std::stable_sort(by_level.begin(), by_level.end(),
                   [&levels](VertexId a, VertexId b) {
                     return levels[a] > levels[b];
                   });
  // by_level[pos] is the old ID at sweep position pos; we need old -> new.
  return InvertPermutation(by_level);
}

EdgeList ApplyPermutation(const EdgeList& edges, const Permutation& perm) {
  PHAST_SPAN("reorder.apply_permutation");
  Require(perm.size() == edges.NumVertices(),
          "permutation size does not match vertex count");
  EdgeList out(edges.NumVertices());
  for (const Edge& e : edges.Edges()) {
    out.AddArc(perm[e.tail], perm[e.head], e.weight);
  }
  return out;
}

}  // namespace phast

#include "graph/edge_list.h"

#include <algorithm>

namespace phast {

void EdgeList::AddArc(VertexId tail, VertexId head, Weight weight) {
  edges_.push_back(Edge{tail, head, weight});
  EnsureVertices(std::max(tail, head) + 1);
}

void EdgeList::AddBidirectional(VertexId u, VertexId v, Weight weight) {
  AddArc(u, v, weight);
  AddArc(v, u, weight);
}

void EdgeList::Normalize() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.tail != b.tail) return a.tail < b.tail;
    if (a.head != b.head) return a.head < b.head;
    return a.weight < b.weight;
  });
  size_t out = 0;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.tail == e.head) continue;  // self-loop
    if (out > 0 && edges_[out - 1].tail == e.tail &&
        edges_[out - 1].head == e.head) {
      continue;  // parallel arc; the first (cheapest) one was kept
    }
    edges_[out++] = e;
  }
  edges_.resize(out);
}

}  // namespace phast

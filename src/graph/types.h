#pragma once

#include <cstdint>
#include <limits>

namespace phast {

/// Vertex identifier. Road networks of interest have < 2^32 vertices.
using VertexId = uint32_t;

/// Arc index into a CSR arc list.
using ArcId = uint32_t;

/// Arc length / distance label. The paper uses 32-bit labels so that four of
/// them fit into a 128-bit SSE register (§IV-B).
using Weight = uint32_t;

/// Sentinel for "no vertex" (parents of roots, unreached vertices).
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Distance label of an unreached vertex. All arithmetic in the sweep
/// saturates at this value.
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::max();

/// Saturating addition of distance labels: inf + x == inf, and partial sums
/// never wrap around. Valid whenever both operands are <= kInfWeight.
inline Weight SaturatingAdd(Weight a, Weight b) {
  const uint64_t s = static_cast<uint64_t>(a) + static_cast<uint64_t>(b);
  return s >= kInfWeight ? kInfWeight : static_cast<Weight>(s);
}

}  // namespace phast

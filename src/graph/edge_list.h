#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace phast {

/// A single directed arc with its length.
struct Edge {
  VertexId tail = 0;
  VertexId head = 0;
  Weight weight = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Mutable arc soup used while constructing or transforming graphs.
///
/// Graph construction pipeline: generators and file readers emit an
/// EdgeList; Normalize() canonicalizes it; Graph (CSR) is built from it.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Adds a directed arc. Grows the vertex count if needed.
  void AddArc(VertexId tail, VertexId head, Weight weight);

  /// Adds both directions with the same weight.
  void AddBidirectional(VertexId u, VertexId v, Weight weight);

  /// Sorts by (tail, head, weight), removes self-loops, and keeps only the
  /// minimum-weight arc among parallel arcs. Self-loops can never lie on a
  /// shortest path with non-negative weights; parallel arcs other than the
  /// cheapest are redundant.
  void Normalize();

  /// Grows (never shrinks) the declared vertex count.
  void EnsureVertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  [[nodiscard]] VertexId NumVertices() const { return num_vertices_; }
  [[nodiscard]] size_t NumArcs() const { return edges_.size(); }

  [[nodiscard]] const std::vector<Edge>& Edges() const { return edges_; }
  [[nodiscard]] std::vector<Edge>& MutableEdges() { return edges_; }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace phast

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace phast {

/// A vertex relabeling: perm[old_id] == new_id. All entries distinct, in
/// [0, n). The paper's Table I compares three layouts (random, input-order,
/// DFS); §IV-A introduces the level layout that makes the PHAST sweep
/// sequential.
using Permutation = std::vector<VertexId>;

/// True iff perm is a bijection on [0, perm.size()). Takes a span so both
/// owned permutations and zero-copy snapshot views can be checked.
[[nodiscard]] bool IsPermutation(std::span<const VertexId> perm);

/// inverse[new_id] == old_id.
[[nodiscard]] Permutation InvertPermutation(const Permutation& perm);

/// Identity relabeling ("input" layout).
[[nodiscard]] Permutation IdentityPermutation(VertexId n);

/// Uniformly random relabeling ("random" layout of Table I).
[[nodiscard]] Permutation RandomPermutation(VertexId n, uint64_t seed);

/// DFS discovery order from the given root ("DFS" layout of Table I and
/// §II-A); unreached vertices are appended via restarts in ID order.
/// Treats arcs as directed.
[[nodiscard]] Permutation DfsPermutation(const Graph& graph, VertexId root = 0);

/// The PHAST layout of §IV-A: vertices sorted by *descending* CH level;
/// within a level, ascending current ID (callers pass a DFS-relabeled graph
/// to get the paper's "DFS order within levels" tie-break). The resulting
/// new IDs make the downward sweep a forward scan over memory.
[[nodiscard]] Permutation LevelPermutation(const std::vector<uint32_t>& levels);

/// Relabels all endpoints: vertex v becomes perm[v].
[[nodiscard]] EdgeList ApplyPermutation(const EdgeList& edges,
                                        const Permutation& perm);

/// Reorders a per-vertex attribute array: out[perm[v]] = in[v].
template <typename T>
[[nodiscard]] std::vector<T> ApplyPermutationToValues(
    const std::vector<T>& values, const Permutation& perm) {
  std::vector<T> out(values.size());
  for (size_t v = 0; v < values.size(); ++v) out[perm[v]] = values[v];
  return out;
}

}  // namespace phast

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// A sources x targets distance table, row-major. The workload the paper's
/// introduction motivates: "applications based on all-pairs shortest-paths
/// [become] practical for continental-sized road networks" — logistics
/// distance tables, OD matrices, and full APSP are all instances.
class DistanceTable {
 public:
  DistanceTable() = default;
  DistanceTable(size_t num_sources, size_t num_targets)
      : num_sources_(num_sources),
        num_targets_(num_targets),
        values_(num_sources * num_targets, kInfWeight) {}

  [[nodiscard]] Weight At(size_t source_index, size_t target_index) const {
    return values_[source_index * num_targets_ + target_index];
  }
  void Set(size_t source_index, size_t target_index, Weight value) {
    values_[source_index * num_targets_ + target_index] = value;
  }

  [[nodiscard]] size_t NumSources() const { return num_sources_; }
  [[nodiscard]] size_t NumTargets() const { return num_targets_; }
  [[nodiscard]] size_t SizeBytes() const {
    return values_.size() * sizeof(Weight);
  }

  friend bool operator==(const DistanceTable&, const DistanceTable&) = default;

 private:
  size_t num_sources_ = 0;
  size_t num_targets_ = 0;
  std::vector<Weight> values_;
};

/// How ComputeDistanceTable runs its sweeps.
enum class TableStrategy {
  /// One full PHAST sweep per source batch (k trees per sweep); best when
  /// targets cover much of the graph.
  kFullSweep,
  /// RPHAST: restrict the downward graph to the targets once, then sweep
  /// only the restricted arrays per source; best for small target sets.
  kRestrictedSweep,
  /// Picks restricted sweeps when the target count is below ~5% of n.
  kAuto,
};

struct TableOptions {
  TableStrategy strategy = TableStrategy::kAuto;
  /// Trees per sweep for the full-sweep strategy (§IV-B).
  uint32_t trees_per_sweep = 16;
};

/// Computes the sources x targets table with PHAST/RPHAST. Both strategies
/// produce identical values; see TableStrategy for the trade-off.
[[nodiscard]] DistanceTable ComputeDistanceTable(
    const Phast& engine, std::span<const VertexId> sources,
    std::span<const VertexId> targets, const TableOptions& options = {});

}  // namespace phast

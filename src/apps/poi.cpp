// k-nearest-POI: per-category vertex buckets plus a prefix-cutoff sweep.
// The PHAST paper names POI search as a core batched application; the
// sweep-prefix trick is the sound form of its "early termination" — the
// level layout guarantees labels in a prefix never depend on the suffix.
#include "apps/poi.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_set>

#include "phast/kernels.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast {
namespace {

constexpr char kPoiMagic[8] = {'P', 'H', 'P', 'O', 'I', '0', '1', '\0'};

// Local FNV-1a so apps/ stays below server/ in the layering DAG (the
// snapshot code has its own copy; the constants are the standard ones, so
// the two agree byte-for-byte on identical input).
constexpr uint64_t kFnvSeed = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(const uint8_t* data, size_t size) {
  uint64_t hash = kFnvSeed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

template <typename T>
void AppendValue(std::vector<uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T TakeValue(const uint8_t*& cursor, const uint8_t* end) {
  Require(static_cast<size_t>(end - cursor) >= sizeof(T),
          "truncated POI file");
  T value{};
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

PoiIndex::PoiIndex(VertexId num_vertices,
                   std::vector<std::vector<VertexId>> buckets)
    : num_vertices_(num_vertices) {
  first_.reserve(buckets.size() + 1);
  first_.push_back(0);
  for (std::vector<VertexId>& bucket : buckets) {
    std::sort(bucket.begin(), bucket.end());
    Require(std::adjacent_find(bucket.begin(), bucket.end()) == bucket.end(),
            "POI bucket contains a duplicate vertex");
    for (const VertexId v : bucket) {
      Require(v < num_vertices, "POI vertex out of range");
      vertices_.push_back(v);
    }
    first_.push_back(static_cast<uint32_t>(vertices_.size()));
  }
}

PoiIndex PoiIndex::GenerateRandom(VertexId num_vertices, uint32_t categories,
                                  uint32_t per_category, uint64_t seed) {
  Require(num_vertices > 0, "POI index needs a non-empty vertex set");
  Rng rng(seed ^ 0x705F1E9D2B3C4A58ULL);
  std::vector<std::vector<VertexId>> buckets(categories);
  for (uint32_t c = 0; c < categories; ++c) {
    const uint32_t want = std::min<uint32_t>(per_category, num_vertices);
    std::unordered_set<VertexId> picked;
    picked.reserve(want);
    while (picked.size() < want) {
      picked.insert(static_cast<VertexId>(rng.NextBounded(num_vertices)));
    }
    buckets[c].assign(picked.begin(), picked.end());
  }
  return PoiIndex(num_vertices, std::move(buckets));
}

KnnSweeper::KnnSweeper(const Phast& engine, const PoiIndex& index,
                       uint32_t category, bool use_cutoff)
    : engine_(engine) {
  Require(index.NumVertices() == engine.NumVertices(),
          "POI index was built for a different graph");
  Require(category < index.NumCategories(), "POI category out of range");
  const std::span<const VertexId> bucket = index.Bucket(category);
  bucket_.assign(bucket.begin(), bucket.end());

  const VertexId n = engine.NumVertices();
  if (bucket_.empty()) {
    cutoff_ = 0;  // nothing to find; Query never sweeps
    return;
  }
  cutoff_ = n;
  if (!use_cutoff) return;

  // Deepest sweep position any bucket vertex occupies. Everything past it
  // can only influence labels at even later positions.
  Phast::Workspace probe = engine.MakeWorkspace(1);
  const SweepArgs args = engine.MakeSweepArgs(probe);
  std::vector<VertexId> pos_of_label(n);
  for (VertexId pos = 0; pos < n; ++pos) {
    pos_of_label[args.order != nullptr ? args.order[pos] : pos] = pos;
  }
  VertexId max_pos = 0;
  for (const VertexId v : bucket_) {
    max_pos = std::max(max_pos, pos_of_label[engine.LabelIndexOf(v)]);
  }
  cutoff_ = max_pos + 1;
  // Snap up to the enclosing level-group boundary (GPU-friendly granularity
  // and the form the paper's level-kernel framing suggests); sweeping more
  // of the prefix never changes the bucket labels.
  const std::span<const VertexId> levels = engine.LevelBoundaries();
  const auto it = std::upper_bound(levels.begin(), levels.end(), max_pos);
  if (it != levels.end()) cutoff_ = *it;
}

std::vector<PoiResult> KnnSweeper::Query(VertexId source, uint32_t k,
                                         Phast::Workspace& ws) const {
  Require(ws.NumTrees() == 1 && !ws.WantsParents(),
          "KnnSweeper needs a plain single-tree workspace");
  std::vector<PoiResult> results;
  if (k == 0 || bucket_.empty()) return results;

  engine_.RunUpwardPhase({&source, 1}, ws);
  const SweepArgs args = engine_.MakeSweepArgs(ws);
  const PhastOptions& options = engine_.GetOptions();
  const SweepKernelFn kernel = SelectSweepKernel(
      options.simd, /*k=*/1, /*want_parents=*/false,
      /*use_marks=*/options.implicit_init);
  kernel(args, 0, cutoff_);
  engine_.FinishExternalSweep(ws);

  results.reserve(bucket_.size());
  for (const VertexId v : bucket_) {
    const Weight d = engine_.Distance(ws, v, 0);
    if (d != kInfWeight) results.push_back(PoiResult{d, v});
  }
  std::sort(results.begin(), results.end(),
            [](const PoiResult& a, const PoiResult& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.vertex < b.vertex;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

void WritePoiFile(const std::string& path, const PoiIndex& index) {
  std::vector<uint8_t> payload;
  payload.reserve(sizeof(kPoiMagic) + 16 + index.first_.size() * 4 +
                  index.vertices_.size() * 4);
  payload.insert(payload.end(), kPoiMagic, kPoiMagic + sizeof(kPoiMagic));
  AppendValue<uint32_t>(payload, index.num_vertices_);
  AppendValue<uint32_t>(payload, index.NumCategories());
  AppendValue<uint64_t>(payload, index.vertices_.size());
  for (const uint32_t f : index.first_) AppendValue<uint32_t>(payload, f);
  for (const VertexId v : index.vertices_) AppendValue<uint32_t>(payload, v);
  const uint64_t checksum = Fnv1a(payload.data(), payload.size());
  AppendValue<uint64_t>(payload, checksum);

  std::ofstream out(path, std::ios::binary);
  Require(out.good(), "cannot open file for writing: " + path);
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  Require(out.good(), "error while writing: " + path);
}

PoiIndex ReadPoiFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  Require(in.good(), "cannot open file for reading: " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  Require(bytes.size() >= sizeof(kPoiMagic) + 16 + 4 + 8,
          "truncated POI file");
  Require(std::memcmp(bytes.data(), kPoiMagic, sizeof(kPoiMagic)) == 0,
          "not a PHPOI01 file (bad magic)");

  const uint8_t* cursor = bytes.data() + bytes.size() - 8;
  const uint8_t* const hash_at = cursor;
  const uint64_t stored = TakeValue<uint64_t>(cursor, bytes.data() + bytes.size());
  Require(Fnv1a(bytes.data(), static_cast<size_t>(hash_at - bytes.data())) ==
              stored,
          "POI file checksum mismatch");

  cursor = bytes.data() + sizeof(kPoiMagic);
  const uint8_t* const end = hash_at;
  PoiIndex index;
  index.num_vertices_ = TakeValue<uint32_t>(cursor, end);
  const uint32_t categories = TakeValue<uint32_t>(cursor, end);
  const uint64_t total = TakeValue<uint64_t>(cursor, end);
  Require(total <= index.num_vertices_ * static_cast<uint64_t>(categories) &&
              static_cast<size_t>(end - cursor) ==
                  (static_cast<size_t>(categories) + 1 + total) * 4,
          "POI file arrays do not match its header");
  index.first_.resize(categories + 1);
  for (uint32_t& f : index.first_) f = TakeValue<uint32_t>(cursor, end);
  Require(index.first_.front() == 0 && index.first_.back() == total &&
              std::is_sorted(index.first_.begin(), index.first_.end()),
          "POI file CSR offsets are malformed");
  index.vertices_.resize(total);
  for (VertexId& v : index.vertices_) {
    v = TakeValue<uint32_t>(cursor, end);
    Require(v < index.num_vertices_, "POI file vertex out of range");
  }
  return index;
}

}  // namespace phast

#include "apps/reach.h"

#include <algorithm>
#include <numeric>

#include "dijkstra/dijkstra.h"
#include "phast/batch.h"
#include "phast/tree.h"
#include "pq/dary_heap.h"
#include "util/error.h"

namespace phast {
namespace {

/// Folds one shortest path tree into the running reach values:
/// reach(v) = max(reach(v), min(depth(v), height(v))).
void AccumulateTreeReach(const std::vector<Weight>& dist,
                         const std::vector<VertexId>& parent,
                         std::vector<Weight>* reach) {
  const VertexId n = static_cast<VertexId>(dist.size());

  // Process leaves-to-root: descending distance is a reverse topological
  // order of the tree because arc weights are strictly positive.
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] != kInfWeight) order.push_back(v);
  }
  std::sort(order.begin(), order.end(),
            [&dist](VertexId a, VertexId b) { return dist[a] > dist[b]; });

  std::vector<Weight> height(n, 0);
  for (const VertexId v : order) {
    const VertexId p = parent[v];
    if (p != kInvalidVertex) {
      height[p] = std::max(height[p],
                           static_cast<Weight>(height[v] + dist[v] - dist[p]));
    }
    (*reach)[v] = std::max((*reach)[v], std::min(dist[v], height[v]));
  }
}

}  // namespace

std::vector<Weight> ComputeReaches(const Graph& graph, const Phast& engine,
                                   std::span<const VertexId> sources,
                                   uint32_t trees_per_sweep) {
  const VertexId n = graph.NumVertices();
  Require(engine.NumVertices() == n, "engine does not match graph");
  std::vector<Weight> reach(n, 0);

  BatchOptions options;
  options.trees_per_sweep = trees_per_sweep;
  ComputeManyTrees(
      engine, sources, options,
      [&](size_t, const Phast::Workspace& ws, uint32_t slot) {
        std::vector<Weight> dist(n);
        for (VertexId v = 0; v < n; ++v) {
          dist[v] = engine.Distance(ws, v, slot);
        }
        const std::vector<VertexId> parent =
            BuildTreeInOriginalGraph(graph, engine, ws, slot);
#pragma omp critical(phast_reach_reduce)
        AccumulateTreeReach(dist, parent, &reach);
      });
  return reach;
}

std::vector<Weight> ComputeReachesDijkstra(const Graph& graph,
                                           std::span<const VertexId> sources) {
  const VertexId n = graph.NumVertices();
  std::vector<Weight> reach(n, 0);
  BinaryHeap queue(n);
  std::vector<Weight> dist(n);
  std::vector<VertexId> parent(n);
  for (const VertexId s : sources) {
    DijkstraInto(graph, s, queue, dist, {});
    // Tree reach depends on which shortest path tree is chosen when ties
    // exist; derive the parents with the same canonical rule as the PHAST
    // path (first witness in ascending tail order) so both implementations
    // compute the same trees.
    std::fill(parent.begin(), parent.end(), kInvalidVertex);
    for (VertexId u = 0; u < n; ++u) {
      if (dist[u] == kInfWeight) continue;
      for (const Arc& arc : graph.ArcsOf(u)) {
        const VertexId v = arc.other;
        if (parent[v] != kInvalidVertex || v == s) continue;
        if (dist[v] == SaturatingAdd(dist[u], arc.weight)) parent[v] = u;
      }
    }
    AccumulateTreeReach(dist, parent, &reach);
  }
  return reach;
}

}  // namespace phast

#include "apps/arcflags.h"

#include <algorithm>

#include "dijkstra/dijkstra.h"
#include "phast/batch.h"
#include "pq/dary_heap.h"
#include "util/error.h"

namespace phast {

ArcFlags::ArcFlags(const Graph& forward, PartitionResult partition)
    : forward_(forward),
      reverse_(forward.Reversed()),
      partition_(std::move(partition)) {
  Require(partition_.cell.size() == forward_.NumVertices(),
          "partition does not match graph");
  Require(partition_.num_cells >= 1, "partition has no cells");
  boundary_ = BoundaryVertices(forward_, partition_);
  words_per_arc_ = (partition_.num_cells + 63) / 64;
  flags_.assign(forward_.NumArcs() * static_cast<size_t>(words_per_arc_), 0);
}

void ArcFlags::ResetFlags() {
  std::fill(flags_.begin(), flags_.end(), uint64_t{0});
  // Arcs inside a cell carry that cell's flag so queries can finish at
  // non-boundary targets.
  ArcId arc = 0;
  for (VertexId u = 0; u < forward_.NumVertices(); ++u) {
    for (const Arc& a : forward_.ArcsOf(u)) {
      if (partition_.cell[u] == partition_.cell[a.other]) {
        SetFlag(arc, partition_.cell[u]);
      }
      ++arc;
    }
  }
}

void ArcFlags::AbsorbTree(VertexId b, const std::vector<Weight>& dist_to_b) {
  const uint32_t cell = partition_.cell[b];
  ArcId arc = 0;
  for (VertexId u = 0; u < forward_.NumVertices(); ++u) {
    const Weight du = dist_to_b[u];
    for (const Arc& a : forward_.ArcsOf(u)) {
      // (u, v) starts a shortest u -> b path iff l(u,v) + d(v -> b) equals
      // d(u -> b).
      if (du != kInfWeight && dist_to_b[a.other] != kInfWeight &&
          du == SaturatingAdd(a.weight, dist_to_b[a.other])) {
        SetFlag(arc, cell);
      }
      ++arc;
    }
  }
}

void ArcFlags::PreprocessWithDijkstra() {
  ResetFlags();
  const VertexId n = forward_.NumVertices();
  BinaryHeap queue(n);
  std::vector<Weight> dist(n);
  for (const VertexId b : boundary_) {
    // Distances *to* b in the original graph are distances *from* b in the
    // reverse graph.
    DijkstraInto(reverse_, b, queue, dist, {});
    AbsorbTree(b, dist);
  }
  preprocessed_ = true;
}

void ArcFlags::PreprocessWithPhast(const Phast& reverse_engine,
                                   uint32_t trees_per_sweep) {
  Require(reverse_engine.NumVertices() == forward_.NumVertices(),
          "reverse engine does not match graph");
  ResetFlags();
  const VertexId n = forward_.NumVertices();

  // AbsorbTree writes shared flag words, so serialize it; the tree
  // computations themselves parallelize across threads.
  BatchOptions options;
  options.trees_per_sweep = trees_per_sweep;
  ComputeManyTrees(reverse_engine, boundary_, options,
                   [&](size_t source_index, const Phast::Workspace& ws,
                       uint32_t slot) {
                     std::vector<Weight> local(n);
                     for (VertexId v = 0; v < n; ++v) {
                       local[v] = reverse_engine.Distance(ws, v, slot);
                     }
#pragma omp critical(phast_arcflags_absorb)
                     AbsorbTree(boundary_[source_index], local);
                   });
  preprocessed_ = true;
}

PointToPointResult ArcFlags::Query(VertexId s, VertexId t) const {
  Require(preprocessed_, "arc flags not preprocessed yet");
  const VertexId n = forward_.NumVertices();
  Require(s < n && t < n, "query endpoint out of range");
  const uint32_t target_cell = partition_.cell[t];

  PointToPointResult result;
  std::vector<Weight> dist(n, kInfWeight);
  std::vector<VertexId> parent(n, kInvalidVertex);
  BinaryHeap queue(n);
  dist[s] = 0;
  queue.Update(s, 0);
  while (!queue.Empty()) {
    const auto [v, key] = queue.ExtractMin();
    ++result.scanned;
    if (v == t) break;
    ArcId arc = forward_.FirstArray()[v];
    for (const Arc& a : forward_.ArcsOf(v)) {
      if (GetFlag(arc, target_cell)) {
        const Weight candidate = SaturatingAdd(key, a.weight);
        if (candidate < dist[a.other]) {
          dist[a.other] = candidate;
          parent[a.other] = v;
          queue.Update(a.other, candidate);
        }
      }
      ++arc;
    }
  }

  result.dist = dist[t];
  if (result.dist != kInfWeight) {
    for (VertexId v = t; v != kInvalidVertex; v = parent[v]) {
      result.path.push_back(v);
    }
    std::reverse(result.path.begin(), result.path.end());
  }
  return result;
}

void ArcFlags::ResetSourceFlags() {
  source_flags_.assign(forward_.NumArcs() * static_cast<size_t>(words_per_arc_),
                       0);
  ArcId arc = 0;
  for (VertexId u = 0; u < forward_.NumVertices(); ++u) {
    for (const Arc& a : forward_.ArcsOf(u)) {
      if (partition_.cell[u] == partition_.cell[a.other]) {
        SetSourceFlag(arc, partition_.cell[u]);
      }
      ++arc;
    }
  }
  if (reverse_to_forward_arc_.empty()) {
    // Align reverse arcs with their forward twins once: reverse_.ArcsOf(v)
    // lists incoming arcs (u, v); find each one's index in forward_.
    reverse_to_forward_arc_.resize(forward_.NumArcs());
    size_t rev_index = 0;
    for (VertexId v = 0; v < forward_.NumVertices(); ++v) {
      for (const Arc& incoming : reverse_.ArcsOf(v)) {
        const VertexId u = incoming.other;
        ArcId fwd = forward_.FirstArray()[u];
        for (const Arc& a : forward_.ArcsOf(u)) {
          if (a.other == v && a.weight == incoming.weight) break;
          ++fwd;
        }
        reverse_to_forward_arc_[rev_index++] = fwd;
      }
    }
  }
}

void ArcFlags::AbsorbSourceTree(VertexId b,
                                const std::vector<Weight>& dist_from_b) {
  const uint32_t cell = partition_.cell[b];
  ArcId arc = 0;
  for (VertexId u = 0; u < forward_.NumVertices(); ++u) {
    const Weight du = dist_from_b[u];
    for (const Arc& a : forward_.ArcsOf(u)) {
      // (u, v) continues a shortest b -> v path iff d(b -> u) + l(u,v)
      // equals d(b -> v).
      if (du != kInfWeight && dist_from_b[a.other] != kInfWeight &&
          dist_from_b[a.other] == SaturatingAdd(du, a.weight)) {
        SetSourceFlag(arc, cell);
      }
      ++arc;
    }
  }
}

void ArcFlags::PreprocessSourceFlagsWithDijkstra() {
  ResetSourceFlags();
  const VertexId n = forward_.NumVertices();
  BinaryHeap queue(n);
  std::vector<Weight> dist(n);
  for (const VertexId b : boundary_) {
    DijkstraInto(forward_, b, queue, dist, {});
    AbsorbSourceTree(b, dist);
  }
  source_preprocessed_ = true;
}

void ArcFlags::PreprocessSourceFlagsWithPhast(const Phast& forward_engine,
                                              uint32_t trees_per_sweep) {
  Require(forward_engine.NumVertices() == forward_.NumVertices(),
          "forward engine does not match graph");
  ResetSourceFlags();
  const VertexId n = forward_.NumVertices();
  BatchOptions options;
  options.trees_per_sweep = trees_per_sweep;
  ComputeManyTrees(forward_engine, boundary_, options,
                   [&](size_t source_index, const Phast::Workspace& ws,
                       uint32_t slot) {
                     std::vector<Weight> local(n);
                     for (VertexId v = 0; v < n; ++v) {
                       local[v] = forward_engine.Distance(ws, v, slot);
                     }
#pragma omp critical(phast_arcflags_absorb_src)
                     AbsorbSourceTree(boundary_[source_index], local);
                   });
  source_preprocessed_ = true;
}

PointToPointResult ArcFlags::QueryBidirectional(VertexId s, VertexId t) const {
  Require(preprocessed_ && source_preprocessed_,
          "bidirectional queries need both flag sets preprocessed");
  const VertexId n = forward_.NumVertices();
  Require(s < n && t < n, "query endpoint out of range");

  PointToPointResult result;
  if (s == t) {
    result.dist = 0;
    result.path = {s};
    return result;
  }
  const uint32_t target_cell = partition_.cell[t];
  const uint32_t source_cell = partition_.cell[s];

  std::vector<Weight> dist_f(n, kInfWeight), dist_b(n, kInfWeight);
  std::vector<VertexId> par_f(n, kInvalidVertex), par_b(n, kInvalidVertex);
  BinaryHeap queue_f(n), queue_b(n);
  dist_f[s] = 0;
  queue_f.Update(s, 0);
  dist_b[t] = 0;
  queue_b.Update(t, 0);

  Weight best = kInfWeight;
  VertexId meet = kInvalidVertex;

  const auto consider_meeting = [&](VertexId v) {
    if (dist_f[v] != kInfWeight && dist_b[v] != kInfWeight) {
      const Weight through = SaturatingAdd(dist_f[v], dist_b[v]);
      if (through < best) {
        best = through;
        meet = v;
      }
    }
  };

  while (true) {
    const Weight min_f = queue_f.Empty() ? kInfWeight : queue_f.MinKey();
    const Weight min_b = queue_b.Empty() ? kInfWeight : queue_b.MinKey();
    if (SaturatingAdd(min_f, min_b) >= best) break;
    if (min_f <= min_b) {
      const auto [v, key] = queue_f.ExtractMin();
      ++result.scanned;
      ArcId arc = forward_.FirstArray()[v];
      for (const Arc& a : forward_.ArcsOf(v)) {
        if (GetFlag(arc, target_cell)) {
          const Weight cand = SaturatingAdd(key, a.weight);
          if (cand < dist_f[a.other]) {
            dist_f[a.other] = cand;
            par_f[a.other] = v;
            queue_f.Update(a.other, cand);
            consider_meeting(a.other);
          }
        }
        ++arc;
      }
    } else {
      const auto [v, key] = queue_b.ExtractMin();
      ++result.scanned;
      size_t rev_index = reverse_.FirstArray()[v];
      for (const Arc& a : reverse_.ArcsOf(v)) {
        // Traversing (u, v) backward: prune by the source cell's flags.
        if (GetSourceFlag(reverse_to_forward_arc_[rev_index], source_cell)) {
          const Weight cand = SaturatingAdd(key, a.weight);
          if (cand < dist_b[a.other]) {
            dist_b[a.other] = cand;
            par_b[a.other] = v;
            queue_b.Update(a.other, cand);
            consider_meeting(a.other);
          }
        }
        ++rev_index;
      }
    }
  }

  result.dist = best;
  if (best == kInfWeight) return result;
  std::vector<VertexId> half;
  for (VertexId v = meet; v != kInvalidVertex; v = par_f[v]) half.push_back(v);
  result.path.assign(half.rbegin(), half.rend());
  for (VertexId v = par_b[meet]; v != kInvalidVertex; v = par_b[v]) {
    result.path.push_back(v);
  }
  return result;
}

double ArcFlags::FlagDensity() const {
  size_t set_bits = 0;
  for (const uint64_t w : flags_) {
    set_bits += static_cast<size_t>(__builtin_popcountll(w));
  }
  const size_t total =
      forward_.NumArcs() * static_cast<size_t>(partition_.num_cells);
  return total == 0 ? 0.0 : static_cast<double>(set_bits) /
                                static_cast<double>(total);
}

}  // namespace phast

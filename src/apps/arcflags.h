#pragma once

#include <cstdint>
#include <vector>

#include "apps/partition.h"
#include "dijkstra/bidirectional.h"
#include "graph/csr.h"
#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// Arc flags (§VII-B.b, [10], [11]): every arc stores one bit per cell,
/// true iff the arc starts a shortest path to some vertex of that cell.
/// Queries run Dijkstra but relax only arcs whose flag for the target's
/// cell is set, yielding large speedups; the expensive part is
/// preprocessing — one reverse shortest path tree per boundary vertex —
/// which is exactly the workload PHAST accelerates (the paper quotes
/// 10.5 hours with Dijkstra vs under 3 minutes with GPHAST).
class ArcFlags {
 public:
  ArcFlags(const Graph& forward, PartitionResult partition);

  /// Preprocesses flags with one Dijkstra tree per boundary vertex on the
  /// reverse graph (the baseline).
  void PreprocessWithDijkstra();

  /// Preprocesses flags with PHAST trees. `reverse_engine` must be a PHAST
  /// engine built over the *reversed* input graph; `trees_per_sweep` is the
  /// k of §IV-B.
  void PreprocessWithPhast(const Phast& reverse_engine,
                           uint32_t trees_per_sweep = 1);

  /// Flag-pruned unidirectional Dijkstra from s to t. Requires one of the
  /// Preprocess* methods to have run.
  [[nodiscard]] PointToPointResult Query(VertexId s, VertexId t) const;

  /// Computes the *source* flags needed by the backward half of
  /// bidirectional queries: F'_C(a) is true iff a lies on a shortest path
  /// *from* some vertex of cell C (one forward tree per boundary vertex;
  /// `forward_engine` must be a PHAST engine over the forward graph).
  /// The paper notes the approach "can easily be made bidirectional" — this
  /// is that extension.
  void PreprocessSourceFlagsWithDijkstra();
  void PreprocessSourceFlagsWithPhast(const Phast& forward_engine,
                                      uint32_t trees_per_sweep = 1);

  /// Bidirectional flag-pruned query: the forward search respects the
  /// target cell's flags, the backward search the source cell's source
  /// flags. Requires both preprocessing passes.
  [[nodiscard]] PointToPointResult QueryBidirectional(VertexId s,
                                                      VertexId t) const;

  [[nodiscard]] bool GetFlag(ArcId arc, uint32_t cell) const {
    return (flags_[static_cast<size_t>(arc) * words_per_arc_ + (cell >> 6)] >>
            (cell & 63)) &
           1;
  }

  [[nodiscard]] const PartitionResult& Partition() const { return partition_; }
  [[nodiscard]] size_t FlagBytes() const {
    return flags_.size() * sizeof(uint64_t);
  }
  [[nodiscard]] size_t NumBoundaryVertices() const { return boundary_.size(); }

  /// Fraction of (arc, cell) flag bits set — a sanity metric: too close to
  /// 1.0 means the partition gives no pruning.
  [[nodiscard]] double FlagDensity() const;

 private:
  void SetFlag(ArcId arc, uint32_t cell) {
    flags_[static_cast<size_t>(arc) * words_per_arc_ + (cell >> 6)] |=
        uint64_t{1} << (cell & 63);
  }
  void SetSourceFlag(ArcId arc, uint32_t cell) {
    source_flags_[static_cast<size_t>(arc) * words_per_arc_ + (cell >> 6)] |=
        uint64_t{1} << (cell & 63);
  }
  [[nodiscard]] bool GetSourceFlag(ArcId arc, uint32_t cell) const {
    return (source_flags_[static_cast<size_t>(arc) * words_per_arc_ +
                          (cell >> 6)] >>
            (cell & 63)) &
           1;
  }

  void ResetFlags();
  void ResetSourceFlags();

  /// Marks every arc that lies on a shortest path toward `b` given
  /// distances-to-b for all vertices, plus intra-cell arcs of b's cell.
  void AbsorbTree(VertexId b, const std::vector<Weight>& dist_to_b);

  /// Source-flag counterpart: arcs on shortest paths *from* `b`.
  void AbsorbSourceTree(VertexId b, const std::vector<Weight>& dist_from_b);

  const Graph& forward_;
  Graph reverse_;
  PartitionResult partition_;
  std::vector<VertexId> boundary_;
  uint32_t words_per_arc_ = 0;
  std::vector<uint64_t> flags_;
  std::vector<uint64_t> source_flags_;
  /// For each arc of reverse_, the index of the same arc in forward_
  /// (built on demand for bidirectional queries).
  std::vector<ArcId> reverse_to_forward_arc_;
  bool preprocessed_ = false;
  bool source_preprocessed_ = false;
};

}  // namespace phast

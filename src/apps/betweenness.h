#pragma once

#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// Exact betweenness centrality (§VII-B.c, [15], [16], [28]):
/// c_B(v) = Σ_{s≠v≠t} σ_st(v) / σ_st, with σ_st the number of shortest s-t
/// paths. Brandes' algorithm needs one shortest path *DAG* per source; with
/// exact distances in hand (from PHAST), path counting and dependency
/// accumulation are two linear passes over the arc list in distance order —
/// no priority queue.
///
/// Contributions are summed over the given sources only (pass all vertices
/// for exact betweenness; a uniform sample gives the standard estimator,
/// scaled by n/|sources| by the caller).
[[nodiscard]] std::vector<double> ComputeBetweenness(
    const Graph& graph, const Phast& engine,
    std::span<const VertexId> sources, uint32_t trees_per_sweep = 1);

/// Reference implementation with Dijkstra providing the distances
/// (identical accumulation passes) — the baseline PHAST replaces.
[[nodiscard]] std::vector<double> ComputeBetweennessDijkstra(
    const Graph& graph, std::span<const VertexId> sources);

/// The shared accumulation core: given exact distances from `source`, adds
/// this source's dependency contributions to `centrality` (Brandes' inner
/// loop over the DAG induced by d(u) + l(u,v) == d(v)).
void AccumulateBrandes(const Graph& graph, VertexId source,
                       const std::vector<Weight>& dist,
                       std::vector<double>* centrality);

/// Sampled betweenness (the approximation techniques of [28], [29] the
/// paper says PHAST can accelerate): contributions from `num_samples`
/// uniformly random pivots, scaled by n / num_samples — an unbiased
/// estimator of exact betweenness. The estimator's per-pivot work is one
/// PHAST tree plus two linear passes, so accuracy/cost is a dial.
[[nodiscard]] std::vector<double> EstimateBetweenness(
    const Graph& graph, const Phast& engine, size_t num_samples,
    uint64_t seed, uint32_t trees_per_sweep = 1);

}  // namespace phast

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace phast {

/// A partition of the vertices into cells, the input arc flags need
/// (§VII-B.b). cell[v] is a dense id in [0, num_cells).
struct PartitionResult {
  std::vector<uint32_t> cell;
  uint32_t num_cells = 0;
};

/// BFS-grow partitioner: repeatedly seeds an unassigned vertex and grows a
/// cell breadth-first (over the union of out- and in-arcs) until it reaches
/// `max_cell_size`. Simple stand-in for the graph-partitioning packages the
/// paper cites ([24]–[27]); produces connected, roughly equal-sized cells
/// with small boundaries on road-like graphs.
[[nodiscard]] PartitionResult PartitionBfs(const Graph& forward,
                                           const Graph& reverse,
                                           uint32_t max_cell_size);

/// Vertices with an incident arc from/to another cell. Arc-flag
/// preprocessing builds one (reverse) shortest path tree per boundary
/// vertex — the count here determines its cost.
[[nodiscard]] std::vector<VertexId> BoundaryVertices(
    const Graph& forward, const PartitionResult& partition);

}  // namespace phast

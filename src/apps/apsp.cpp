#include "apps/apsp.h"

#include "phast/batch.h"
#include "phast/rphast.h"
#include "util/error.h"

namespace phast {
namespace {

DistanceTable FullSweepTable(const Phast& engine,
                             std::span<const VertexId> sources,
                             std::span<const VertexId> targets,
                             uint32_t trees_per_sweep) {
  DistanceTable table(sources.size(), targets.size());
  BatchOptions options;
  options.trees_per_sweep = trees_per_sweep;
  ComputeManyTrees(engine, sources, options,
                   [&](size_t source_index, const Phast::Workspace& ws,
                       uint32_t slot) {
                     // Rows are disjoint, so no synchronization needed.
                     for (size_t t = 0; t < targets.size(); ++t) {
                       table.Set(source_index, t,
                                 engine.Distance(ws, targets[t], slot));
                     }
                   });
  return table;
}

DistanceTable RestrictedSweepTable(const Phast& engine,
                                   std::span<const VertexId> sources,
                                   std::span<const VertexId> targets) {
  DistanceTable table(sources.size(), targets.size());
  const RPhast rphast(engine, targets);
  RPhast::Workspace ws = rphast.MakeWorkspace();
  for (size_t s = 0; s < sources.size(); ++s) {
    rphast.ComputeTree(sources[s], ws);
    for (size_t t = 0; t < targets.size(); ++t) {
      table.Set(s, t, rphast.DistanceToTarget(ws, t));
    }
  }
  return table;
}

}  // namespace

DistanceTable ComputeDistanceTable(const Phast& engine,
                                   std::span<const VertexId> sources,
                                   std::span<const VertexId> targets,
                                   const TableOptions& options) {
  Require(!sources.empty() && !targets.empty(),
          "distance table needs sources and targets");

  TableStrategy strategy = options.strategy;
  if (strategy == TableStrategy::kAuto) {
    // Restriction pays off when the targets (and therefore the restricted
    // subgraph) are a small slice of the network.
    strategy = targets.size() * 20 < engine.NumVertices()
                   ? TableStrategy::kRestrictedSweep
                   : TableStrategy::kFullSweep;
  }
  return strategy == TableStrategy::kRestrictedSweep
             ? RestrictedSweepTable(engine, sources, targets)
             : FullSweepTable(engine, sources, targets,
                              options.trees_per_sweep);
}

}  // namespace phast

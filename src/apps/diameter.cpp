#include "apps/diameter.h"

#include <algorithm>

#include "phast/batch.h"

namespace phast {

DiameterResult ComputeDiameter(const Phast& engine,
                               std::span<const VertexId> sources,
                               uint32_t trees_per_sweep) {
  DiameterResult result;
  const VertexId n = engine.NumVertices();
  BatchOptions options;
  options.trees_per_sweep = trees_per_sweep;
  ComputeManyTrees(
      engine, sources, options,
      [&](size_t source_index, const Phast::Workspace& ws, uint32_t slot) {
        Weight local_max = 0;
        VertexId local_arg = kInvalidVertex;
        const std::span<const Weight> labels = engine.RawLabels(ws);
        const uint32_t k = ws.NumTrees();
        for (VertexId label_index = 0; label_index < n; ++label_index) {
          const Weight d = labels[static_cast<size_t>(label_index) * k + slot];
          if (d != kInfWeight && d > local_max) {
            local_max = d;
            local_arg = label_index;
          }
        }
#pragma omp critical(phast_diameter_reduce)
        {
          if (local_max > result.diameter) {
            result.diameter = local_max;
            result.source = sources[source_index];
            result.target = engine.OriginalOf(local_arg);
          }
          ++result.trees_built;
        }
      });
  return result;
}

DiameterResult ComputeDiameterMaxArray(const Phast& engine,
                                       std::span<const VertexId> sources,
                                       uint32_t trees_per_sweep) {
  DiameterResult result;
  const VertexId n = engine.NumVertices();
  // Per-vertex running maximum across all trees — the memory-for-locality
  // trade the paper makes on the GPU ("somewhat memory-consuming, but it
  // keeps the memory accesses within the warps efficient").
  std::vector<Weight> max_label(n, 0);
  std::vector<VertexId> max_source(n, kInvalidVertex);

  BatchOptions options;
  options.trees_per_sweep = trees_per_sweep;
  ComputeManyTrees(
      engine, sources, options,
      [&](size_t source_index, const Phast::Workspace& ws, uint32_t slot) {
        const std::span<const Weight> labels = engine.RawLabels(ws);
        const uint32_t k = ws.NumTrees();
#pragma omp critical(phast_diameter_maxarray)
        {
          for (VertexId label_index = 0; label_index < n; ++label_index) {
            const Weight d =
                labels[static_cast<size_t>(label_index) * k + slot];
            if (d != kInfWeight && d > max_label[label_index]) {
              max_label[label_index] = d;
              max_source[label_index] = sources[source_index];
            }
          }
          ++result.trees_built;
        }
      });

  // Final collection sweep.
  for (VertexId label_index = 0; label_index < n; ++label_index) {
    if (max_label[label_index] > result.diameter) {
      result.diameter = max_label[label_index];
      result.source = max_source[label_index];
      result.target = engine.OriginalOf(label_index);
    }
  }
  return result;
}

}  // namespace phast

#include "apps/partition.h"

#include "util/error.h"

namespace phast {

PartitionResult PartitionBfs(const Graph& forward, const Graph& reverse,
                             uint32_t max_cell_size) {
  const VertexId n = forward.NumVertices();
  Require(reverse.NumVertices() == n, "graph/reverse size mismatch");
  Require(max_cell_size >= 1, "cells must allow at least one vertex");

  constexpr uint32_t kUnassigned = std::numeric_limits<uint32_t>::max();
  PartitionResult result;
  result.cell.assign(n, kUnassigned);

  std::vector<VertexId> queue;
  queue.reserve(max_cell_size);
  for (VertexId seed = 0; seed < n; ++seed) {
    if (result.cell[seed] != kUnassigned) continue;
    const uint32_t cell = result.num_cells++;
    queue.clear();
    queue.push_back(seed);
    result.cell[seed] = cell;
    uint32_t size = 1;
    for (size_t head = 0; head < queue.size() && size < max_cell_size;
         ++head) {
      const VertexId v = queue[head];
      const auto grow = [&](const Arc& arc) {
        if (size < max_cell_size && result.cell[arc.other] == kUnassigned) {
          result.cell[arc.other] = cell;
          queue.push_back(arc.other);
          ++size;
        }
      };
      for (const Arc& arc : forward.ArcsOf(v)) grow(arc);
      for (const Arc& arc : reverse.ArcsOf(v)) grow(arc);
    }
  }
  return result;
}

std::vector<VertexId> BoundaryVertices(const Graph& forward,
                                       const PartitionResult& partition) {
  const VertexId n = forward.NumVertices();
  Require(partition.cell.size() == n, "partition size mismatch");
  std::vector<bool> is_boundary(n, false);
  for (VertexId u = 0; u < n; ++u) {
    for (const Arc& arc : forward.ArcsOf(u)) {
      if (partition.cell[u] != partition.cell[arc.other]) {
        is_boundary[u] = true;
        is_boundary[arc.other] = true;
      }
    }
  }
  std::vector<VertexId> boundary;
  for (VertexId v = 0; v < n; ++v) {
    if (is_boundary[v]) boundary.push_back(v);
  }
  return boundary;
}

}  // namespace phast

#pragma once

#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// Exact vertex reaches (§VII-B.c, [13]): reach(v) is the maximum over all
/// shortest s-t paths through v of min(dist(s,v), dist(v,t)). Computed the
/// canonical way — one shortest path tree per source; within the tree of s,
/// v's contribution is min(depth(v), height(v)) where height is the longest
/// tree distance from v down to a descendant.
///
/// Builds one tree per vertex in `sources` (pass all vertices for exact
/// reaches); requires strictly positive arc weights (tree extraction).
/// The `engine` must be built over `graph`'s hierarchy.
///
/// When shortest paths are not unique, tree reach depends on the chosen
/// tree; both implementations here build the *canonical* tree (first
/// witness arc in ascending tail order), so their results are identical
/// and deterministic.
[[nodiscard]] std::vector<Weight> ComputeReaches(
    const Graph& graph, const Phast& engine,
    std::span<const VertexId> sources, uint32_t trees_per_sweep = 1);

/// Reference implementation via Dijkstra trees — used by tests and as the
/// paper's baseline ("the best known method ... requires computing all n
/// shortest path trees").
[[nodiscard]] std::vector<Weight> ComputeReachesDijkstra(
    const Graph& graph, std::span<const VertexId> sources);

}  // namespace phast

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

struct DiameterResult {
  Weight diameter = 0;
  VertexId source = kInvalidVertex;  // endpoint pair realizing the diameter
  VertexId target = kInvalidVertex;
  size_t trees_built = 0;
};

/// Exact diameter over the given sources (pass all vertices for the true
/// diameter): builds one PHAST tree per source, each thread tracking the
/// maximum finite label it sees (§VII-B.a). Unreachable pairs are skipped,
/// matching the convention for strongly connected road networks.
[[nodiscard]] DiameterResult ComputeDiameter(const Phast& engine,
                                             std::span<const VertexId> sources,
                                             uint32_t trees_per_sweep = 1);

/// The GPHAST-oriented variant (§VII-B.a): keeps a per-vertex running
/// maximum over all trees (one extra n-sized array, warp-friendly writes)
/// and collects the final maximum in one sweep. Returns the same diameter;
/// exists as an ablation of the two bookkeeping strategies.
[[nodiscard]] DiameterResult ComputeDiameterMaxArray(
    const Phast& engine, std::span<const VertexId> sources,
    uint32_t trees_per_sweep = 1);

}  // namespace phast

#include "apps/betweenness.h"

#include <algorithm>
#include <numeric>

#include "dijkstra/dijkstra.h"
#include "phast/batch.h"
#include "pq/dary_heap.h"
#include "util/error.h"
#include "util/rng.h"

namespace phast {

void AccumulateBrandes(const Graph& graph, VertexId source,
                       const std::vector<Weight>& dist,
                       std::vector<double>* centrality) {
  const VertexId n = graph.NumVertices();

  // Vertices reachable from source, by non-decreasing distance: a
  // topological order of the shortest-path DAG.
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] != kInfWeight) order.push_back(v);
  }
  std::sort(order.begin(), order.end(),
            [&dist](VertexId a, VertexId b) { return dist[a] < dist[b]; });

  // Pass 1 (forward): σ(v) = number of shortest source-v paths.
  std::vector<double> sigma(n, 0.0);
  sigma[source] = 1.0;
  for (const VertexId u : order) {
    if (sigma[u] == 0.0) continue;
    for (const Arc& arc : graph.ArcsOf(u)) {
      if (SaturatingAdd(dist[u], arc.weight) == dist[arc.other] &&
          dist[arc.other] != kInfWeight) {
        sigma[arc.other] += sigma[u];
      }
    }
  }

  // Pass 2 (backward): δ(u) = Σ_{(u,v) in DAG} σ(u)/σ(v) · (1 + δ(v)).
  std::vector<double> delta(n, 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId u = *it;
    if (sigma[u] == 0.0) continue;
    for (const Arc& arc : graph.ArcsOf(u)) {
      const VertexId v = arc.other;
      if (SaturatingAdd(dist[u], arc.weight) == dist[v] &&
          dist[v] != kInfWeight && sigma[v] > 0.0) {
        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
      }
    }
    if (u != source) (*centrality)[u] += delta[u];
  }
}

std::vector<double> ComputeBetweenness(const Graph& graph, const Phast& engine,
                                       std::span<const VertexId> sources,
                                       uint32_t trees_per_sweep) {
  const VertexId n = graph.NumVertices();
  Require(engine.NumVertices() == n, "engine does not match graph");
  std::vector<double> centrality(n, 0.0);

  BatchOptions options;
  options.trees_per_sweep = trees_per_sweep;
  ComputeManyTrees(
      engine, sources, options,
      [&](size_t source_index, const Phast::Workspace& ws, uint32_t slot) {
        std::vector<Weight> dist(n);
        for (VertexId v = 0; v < n; ++v) {
          dist[v] = engine.Distance(ws, v, slot);
        }
#pragma omp critical(phast_betweenness_reduce)
        AccumulateBrandes(graph, sources[source_index], dist, &centrality);
      });
  return centrality;
}

std::vector<double> EstimateBetweenness(const Graph& graph,
                                        const Phast& engine,
                                        size_t num_samples, uint64_t seed,
                                        uint32_t trees_per_sweep) {
  const VertexId n = graph.NumVertices();
  Require(num_samples > 0, "need at least one sample pivot");
  Rng rng(seed);
  std::vector<VertexId> pivots(num_samples);
  for (auto& p : pivots) p = static_cast<VertexId>(rng.NextBounded(n));

  std::vector<double> centrality =
      ComputeBetweenness(graph, engine, pivots, trees_per_sweep);
  const double scale =
      static_cast<double>(n) / static_cast<double>(num_samples);
  for (double& c : centrality) c *= scale;
  return centrality;
}

std::vector<double> ComputeBetweennessDijkstra(
    const Graph& graph, std::span<const VertexId> sources) {
  const VertexId n = graph.NumVertices();
  std::vector<double> centrality(n, 0.0);
  BinaryHeap queue(n);
  std::vector<Weight> dist(n);
  for (const VertexId s : sources) {
    DijkstraInto(graph, s, queue, dist, {});
    AccumulateBrandes(graph, s, dist, &centrality);
  }
  return centrality;
}

}  // namespace phast

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"
#include "phast/phast.h"

namespace phast {

/// Per-category POI buckets over a graph's vertex set — the target-side
/// index the k-nearest-POI workload sweeps against. Built once at prepare
/// time (or from explicit buckets in tests), stored CSR-style with each
/// bucket sorted ascending, and shipped as a PHPOI01 sidecar next to the
/// snapshot.
class PoiIndex {
 public:
  PoiIndex() = default;

  /// Builds from explicit buckets: buckets[c] lists category c's vertices
  /// (original ids, duplicates rejected). Buckets may be empty.
  PoiIndex(VertexId num_vertices, std::vector<std::vector<VertexId>> buckets);

  /// Seeded random index: each of `categories` buckets draws up to
  /// `per_category` distinct vertices. Deterministic in (seed, sizes).
  static PoiIndex GenerateRandom(VertexId num_vertices, uint32_t categories,
                                 uint32_t per_category, uint64_t seed);

  [[nodiscard]] VertexId NumVertices() const { return num_vertices_; }
  [[nodiscard]] uint32_t NumCategories() const {
    return first_.empty() ? 0 : static_cast<uint32_t>(first_.size() - 1);
  }
  /// Category c's vertices, sorted ascending by original id.
  [[nodiscard]] std::span<const VertexId> Bucket(uint32_t category) const {
    return {vertices_.data() + first_[category],
            vertices_.data() + first_[category + 1]};
  }
  [[nodiscard]] size_t TotalPois() const { return vertices_.size(); }

 private:
  friend void WritePoiFile(const std::string& path, const PoiIndex& index);
  friend PoiIndex ReadPoiFile(const std::string& path);

  VertexId num_vertices_ = 0;
  std::vector<uint32_t> first_;     // CSR: category -> begin in vertices_
  std::vector<VertexId> vertices_;  // concatenated buckets
};

/// One k-nearest hit. Result sets are ordered by (dist, vertex id) — the
/// deterministic tie-break every engine and the oracle agree on.
struct PoiResult {
  Weight dist = kInfWeight;
  VertexId vertex = 0;

  friend bool operator==(const PoiResult&, const PoiResult&) = default;
};

/// k-nearest-POI queries for one (engine, category) pair. The sweep stops
/// at a *structural* prefix: labels at sweep positions < P depend only on
/// positions < P (arc tails strictly precede their heads), so sweeping up
/// to the end of the deepest level group containing a bucket vertex yields
/// labels bit-identical to the full sweep at every bucket vertex.
/// (Distance-based early termination is unsound here — a vertex swept
/// later can still be closer — so the cutoff is topology-only.)
class KnnSweeper {
 public:
  /// `use_cutoff=false` sweeps the full graph; tests assert both modes
  /// return bit-identical result sets.
  KnnSweeper(const Phast& engine, const PoiIndex& index, uint32_t category,
             bool use_cutoff = true);

  /// The k POIs of the category nearest to `source`, ordered by
  /// (dist, vertex id). Unreachable POIs are dropped; if the category has
  /// fewer than k reachable POIs the whole reachable set is returned.
  /// `ws` must be a plain single-tree workspace (no parents).
  std::vector<PoiResult> Query(VertexId source, uint32_t k,
                               Phast::Workspace& ws) const;

  /// Sweep positions the cutoff keeps — the quantity the early exit
  /// shrinks (== NumVertices() without a cutoff).
  [[nodiscard]] VertexId SweepLength() const { return cutoff_; }
  [[nodiscard]] size_t BucketSize() const { return bucket_.size(); }

 private:
  const Phast& engine_;
  std::vector<VertexId> bucket_;  // original ids, ascending
  VertexId cutoff_ = 0;           // sweep [0, cutoff_)
};

// --- PHPOI01 sidecar ---------------------------------------------------------
// Layout (little-endian): magic "PHPOI01\0", u32 num_vertices,
// u32 num_categories, u64 total_pois, u32 first[num_categories + 1],
// u32 vertices[total_pois], u64 FNV-1a over every preceding byte.

void WritePoiFile(const std::string& path, const PoiIndex& index);
PoiIndex ReadPoiFile(const std::string& path);

}  // namespace phast

// Centrality study: which vertices carry the traffic of a road network?
// Computes exact betweenness and exact reach (paper §VII-B.c) from all
// sources using PHAST trees, then prints the top transit vertices and the
// correlation between the two measures. On road networks both single out
// the highway backbone.
//
// Run:  ./centrality_study [--width=40 --height=40 --top=10]
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/betweenness.h"
#include "apps/reach.h"
#include "ch/contraction.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace phast;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  CountryParams params;
  params.width = static_cast<uint32_t>(cli.GetInt("width", 40));
  params.height = static_cast<uint32_t>(cli.GetInt("height", 40));
  const size_t top = static_cast<size_t>(cli.GetInt("top", 10));

  const GeneratedGraph generated = GenerateCountry(params);
  const SubgraphResult scc =
      LargestStronglyConnectedComponent(generated.edges);
  const Graph graph = Graph::FromEdgeList(scc.edges);
  const VertexId n = graph.NumVertices();
  std::printf("network: %u vertices, %zu arcs\n", n, graph.NumArcs());

  const CHData ch = BuildContractionHierarchy(graph);
  const Phast engine(ch);

  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), VertexId{0});

  Timer timer;
  const std::vector<double> betweenness =
      ComputeBetweenness(graph, engine, all, 16);
  std::printf("exact betweenness (n=%u trees): %.2fs\n", n,
              timer.ElapsedSec());

  timer.Reset();
  const std::vector<Weight> reach = ComputeReaches(graph, engine, all, 16);
  std::printf("exact reaches     (n=%u trees): %.2fs\n", n,
              timer.ElapsedSec());

  // Top-k by betweenness.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return betweenness[a] > betweenness[b];
  });
  std::printf("\n%-8s%-16s%-12s%s\n", "rank", "betweenness", "reach",
              "CH level (should be high for transit vertices)");
  for (size_t i = 0; i < std::min<size_t>(top, n); ++i) {
    const VertexId v = order[i];
    std::printf("%-8zu%-16.0f%-12u%u\n", i + 1, betweenness[v], reach[v],
                ch.level[v]);
  }

  // Rank correlation (Spearman-ish via mean level of top decile).
  double top_level = 0.0, all_level = 0.0;
  const size_t decile = std::max<size_t>(1, n / 10);
  for (size_t i = 0; i < decile; ++i) top_level += ch.level[order[i]];
  for (VertexId v = 0; v < n; ++v) all_level += ch.level[v];
  std::printf(
      "\nmean CH level: top-decile betweenness %.1f vs overall %.1f — CH "
      "importance tracks betweenness on road networks.\n",
      top_level / static_cast<double>(decile),
      all_level / static_cast<double>(n));
  return 0;
}

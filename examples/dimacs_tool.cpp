// dimacs_tool: file-based workflow for the 9th DIMACS Implementation
// Challenge format used by the paper's Europe/USA instances.
//
//   generate:  ./dimacs_tool generate out.gr [--width=64 --height=64
//              --metric=time|distance --coords=out.co]
//   info:      ./dimacs_tool info in.gr
//   prep:      ./dimacs_tool prep in.gr out.ch [--ch-threads=N]
//   sssp:      ./dimacs_tool sssp in.gr [--source=0 --trees=10 --ch=in.ch
//              --ch-threads=N]
//
// --ch-threads picks the contraction thread count (0 = all available); the
// resulting hierarchy is byte-identical for every choice (DESIGN.md §9).
//
// With no arguments it generates a small instance into /tmp and runs the
// sssp pipeline on it, so it doubles as an end-to-end smoke test.
#include <cstdio>
#include <string>

#include "ch/ch_io.h"
#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/dimacs.h"
#include "graph/generators.h"
#include "graph/validation.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace phast;

namespace {

CHParams ChParamsFrom(const CommandLine& cli) {
  CHParams params;
  params.threads = static_cast<uint32_t>(cli.GetInt("ch-threads", 0));
  return params;
}

int Generate(const std::string& path, const CommandLine& cli) {
  CountryParams params;
  params.width = static_cast<uint32_t>(cli.GetInt("width", 64));
  params.height = static_cast<uint32_t>(cli.GetInt("height", 64));
  params.seed = static_cast<uint64_t>(cli.GetInt("seed", 1));
  params.metric = cli.GetString("metric", "time") == "distance"
                      ? Metric::kTravelDistance
                      : Metric::kTravelTime;
  const GeneratedGraph g = GenerateCountry(params);
  WriteDimacsGraphFile(g.edges, path);
  std::printf("wrote %s: %u vertices, %zu arcs\n", path.c_str(),
              g.edges.NumVertices(), g.edges.NumArcs());
  if (cli.Has("coords")) {
    WriteDimacsCoordinatesFile(g.coords, cli.GetString("coords", ""));
    std::printf("wrote coordinates to %s\n",
                cli.GetString("coords", "").c_str());
  }
  return 0;
}

int Info(const std::string& path) {
  const EdgeList edges = ReadDimacsGraphFile(path);
  const SubgraphResult scc = LargestStronglyConnectedComponent(edges);
  std::printf("%s: %s\n", path.c_str(), DiagnoseGraph(edges).Summary().c_str());
  std::printf("largest SCC: %u vertices (%.1f%%)\n",
              scc.edges.NumVertices(),
              100.0 * scc.edges.NumVertices() / edges.NumVertices());
  return 0;
}

int Prep(const std::string& graph_path, const std::string& ch_path,
         const CommandLine& cli) {
  const EdgeList raw = ReadDimacsGraphFile(graph_path);
  const SubgraphResult scc = LargestStronglyConnectedComponent(raw);
  const Graph graph = Graph::FromEdgeList(scc.edges);
  Timer timer;
  const CHData ch = BuildContractionHierarchy(graph, ChParamsFrom(cli));
  WriteCHFile(ch, ch_path);
  std::printf(
      "preprocessed %s (largest SCC: %u vertices) in %.2fs -> %s (%u "
      "levels, %zu shortcuts)\n",
      graph_path.c_str(), graph.NumVertices(), timer.ElapsedSec(),
      ch_path.c_str(), ch.NumLevels(), ch.num_shortcuts);
  std::printf(
      "note: the CH file matches the SCC-relabeled graph, so load the .gr "
      "through this tool (which applies the same relabeling).\n");
  return 0;
}

int Sssp(const std::string& path, const CommandLine& cli) {
  const EdgeList raw = ReadDimacsGraphFile(path);
  const SubgraphResult scc = LargestStronglyConnectedComponent(raw);
  const Graph graph = Graph::FromEdgeList(scc.edges);
  std::printf("graph: %u vertices (largest SCC), %zu arcs\n",
              graph.NumVertices(), graph.NumArcs());

  Timer timer;
  CHData ch;
  if (cli.Has("ch")) {
    ch = ReadCHFile(cli.GetString("ch", ""));
    Require(ch.num_vertices == graph.NumVertices(),
            "--ch file does not match this graph");
    std::printf("CH loaded from file: %.2fs, %u levels\n", timer.ElapsedSec(),
                ch.NumLevels());
  } else {
    ch = BuildContractionHierarchy(graph, ChParamsFrom(cli));
    std::printf("CH preprocessing: %.2fs, %u levels\n", timer.ElapsedSec(),
                ch.NumLevels());
  }

  const Phast engine(ch);
  Phast::Workspace ws = engine.MakeWorkspace();
  const size_t trees = static_cast<size_t>(cli.GetInt("trees", 10));
  Rng rng(7);

  double phast_ms = 0.0, dijkstra_ms = 0.0;
  BinaryHeap queue(graph.NumVertices());
  std::vector<Weight> dist(graph.NumVertices());
  for (size_t i = 0; i < trees; ++i) {
    const VertexId s = i == 0 && cli.Has("source")
                           ? static_cast<VertexId>(cli.GetInt("source", 0))
                           : static_cast<VertexId>(
                                 rng.NextBounded(graph.NumVertices()));
    Require(s < graph.NumVertices(), "--source out of range");
    timer.Reset();
    engine.ComputeTree(s, ws);
    phast_ms += timer.ElapsedMs();
    timer.Reset();
    DijkstraInto(graph, s, queue, dist, {});
    dijkstra_ms += timer.ElapsedMs();
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      Require(engine.Distance(ws, v) == dist[v], "PHAST/Dijkstra mismatch");
    }
  }
  std::printf(
      "%zu trees, all verified against Dijkstra:\n  PHAST    %.2f ms/tree\n"
      "  Dijkstra %.2f ms/tree\n  speedup  %.1fx\n",
      trees, phast_ms / static_cast<double>(trees),
      dijkstra_ms / static_cast<double>(trees), dijkstra_ms / phast_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const auto& args = cli.Positional();
  try {
    if (args.empty()) {
      // Smoke-test mode.
      const char* default_argv[] = {"dimacs_tool", "--width=48",
                                    "--height=48"};
      const CommandLine defaults(3, default_argv);
      const std::string path = "/tmp/phast_demo.gr";
      Generate(path, defaults);
      return Sssp(path, defaults);
    }
    const std::string& command = args[0];
    if (command == "generate" && args.size() >= 2) return Generate(args[1], cli);
    if (command == "info" && args.size() >= 2) return Info(args[1]);
    if (command == "prep" && args.size() >= 3) {
      return Prep(args[1], args[2], cli);
    }
    if (command == "sssp" && args.size() >= 2) return Sssp(args[1], cli);
    std::fprintf(stderr,
                 "usage: %s [generate|info|prep|sssp] <file.gr> [options]\n",
                 cli.ProgramName().c_str());
    return 2;
  } catch (const InputError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

// Distance tables for logistics: a fleet of depots serving customer sites
// needs the full depot x customer travel-time matrix (the input of vehicle
// routing and facility-location solvers). This is the many-tree workload
// PHAST was built for; with few customers, RPHAST's restricted sweeps win.
//
// Run:  ./distance_table [--width=96 --height=96 --depots=12 --customers=64]
#include <cstdio>
#include <vector>

#include "apps/apsp.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "phast/prepare.h"
#include "phast/rphast.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace phast;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  CountryParams params;
  params.width = static_cast<uint32_t>(cli.GetInt("width", 96));
  params.height = static_cast<uint32_t>(cli.GetInt("height", 96));
  const size_t num_depots = static_cast<size_t>(cli.GetInt("depots", 12));
  const size_t num_customers =
      static_cast<size_t>(cli.GetInt("customers", 64));

  const GeneratedGraph generated = GenerateCountry(params);
  const PreparedNetwork net = PrepareNetwork(generated.edges);
  const Phast engine(net.ch);
  std::printf("network: %u vertices (CH: %.2fs)\n", net.NumVertices(),
              net.ch_stats.seconds);

  Rng rng(7);
  std::vector<VertexId> depots(num_depots), customers(num_customers);
  for (auto& d : depots) {
    d = static_cast<VertexId>(rng.NextBounded(net.NumVertices()));
  }
  for (auto& c : customers) {
    c = static_cast<VertexId>(rng.NextBounded(net.NumVertices()));
  }

  // Strategy comparison on the same inputs.
  TableOptions full;
  full.strategy = TableStrategy::kFullSweep;
  Timer timer;
  const DistanceTable table_full =
      ComputeDistanceTable(engine, depots, customers, full);
  const double full_ms = timer.ElapsedMs();

  TableOptions restricted;
  restricted.strategy = TableStrategy::kRestrictedSweep;
  timer.Reset();
  const DistanceTable table_restricted =
      ComputeDistanceTable(engine, depots, customers, restricted);
  const double restricted_ms = timer.ElapsedMs();

  std::printf(
      "%zux%zu table (%zu KB): full sweeps %.2f ms, RPHAST %.2f ms, results "
      "%s\n",
      num_depots, num_customers, table_full.SizeBytes() / 1024, full_ms,
      restricted_ms,
      table_full == table_restricted ? "identical" : "DIFFER (BUG)");

  // A taste of the matrix: nearest depot per customer.
  std::vector<uint32_t> served(num_depots, 0);
  for (size_t c = 0; c < num_customers; ++c) {
    size_t best = 0;
    for (size_t d = 1; d < num_depots; ++d) {
      if (table_full.At(d, c) < table_full.At(best, c)) best = d;
    }
    ++served[best];
  }
  std::printf("\ncustomers served by each depot (nearest-depot rule):\n");
  for (size_t d = 0; d < num_depots; ++d) {
    std::printf("  depot %2zu (vertex %6u): %3u customers\n", d, depots[d],
                served[d]);
  }
  return 0;
}

// Arc-flags preprocessing, the paper's flagship application (§VII-B.b):
// partition the network, compute one reverse shortest path tree per
// boundary vertex — via PHAST instead of Dijkstra — and run flag-pruned
// queries. Shows the preprocessing speedup and the query pruning factor.
//
// Run:  ./arcflags_preprocessing [--width=48 --height=48 --cell=64]
#include <cstdio>
#include <vector>

#include "apps/arcflags.h"
#include "apps/partition.h"
#include "ch/contraction.h"
#include "dijkstra/dijkstra.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "pq/dary_heap.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace phast;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  CountryParams params;
  params.width = static_cast<uint32_t>(cli.GetInt("width", 48));
  params.height = static_cast<uint32_t>(cli.GetInt("height", 48));
  const uint32_t cell_size = static_cast<uint32_t>(cli.GetInt("cell", 64));

  const GeneratedGraph generated = GenerateCountry(params);
  const SubgraphResult scc =
      LargestStronglyConnectedComponent(generated.edges);
  const Graph graph = Graph::FromEdgeList(scc.edges);
  const Graph reverse = graph.Reversed();
  const VertexId n = graph.NumVertices();

  const PartitionResult partition = PartitionBfs(graph, reverse, cell_size);
  ArcFlags flags(graph, partition);
  std::printf(
      "network: %u vertices; partition: %u cells of <= %u, %zu boundary "
      "vertices, %.1f KB of flags\n",
      n, partition.num_cells, cell_size, flags.NumBoundaryVertices(),
      static_cast<double>(flags.FlagBytes()) / 1024.0);

  // Baseline preprocessing: one Dijkstra tree per boundary vertex.
  Timer timer;
  flags.PreprocessWithDijkstra();
  const double dijkstra_s = timer.ElapsedSec();
  std::printf("preprocessing via Dijkstra trees: %.2fs\n", dijkstra_s);

  // PHAST preprocessing: CH on the reverse graph, then batched trees.
  timer.Reset();
  const CHData reverse_ch = BuildContractionHierarchy(reverse);
  const double ch_s = timer.ElapsedSec();
  const Phast reverse_engine(reverse_ch);
  timer.Reset();
  flags.PreprocessWithPhast(reverse_engine, 16);
  const double phast_s = timer.ElapsedSec();
  std::printf(
      "preprocessing via PHAST trees:    %.2fs (+%.2fs one-time CH) -> "
      "%.1fx faster\n",
      phast_s, ch_s, dijkstra_s / phast_s);

  // Query comparison.
  Rng rng(3);
  size_t flagged_scans = 0, dijkstra_scans = 0;
  const int queries = 100;
  BinaryHeap queue(n);
  std::vector<Weight> dist(n);
  for (int i = 0; i < queries; ++i) {
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    const PointToPointResult r = flags.Query(s, t);
    flagged_scans += r.scanned;
    size_t scans = 0;
    DijkstraInto(graph, s, queue, dist, {}, &scans);
    dijkstra_scans += scans;
    // Cross-check correctness on the fly.
    if (r.dist != dist[t]) {
      std::printf("MISMATCH at s=%u t=%u: flags %u vs dijkstra %u\n", s, t,
                  r.dist, dist[t]);
      return 1;
    }
  }
  std::printf(
      "queries: flag-pruned Dijkstra scans %.0f vertices/query vs full "
      "Dijkstra %.0f -> %.1fx pruning, all %d answers verified exact\n",
      static_cast<double>(flagged_scans) / queries,
      static_cast<double>(dijkstra_scans) / queries,
      static_cast<double>(dijkstra_scans) /
          static_cast<double>(flagged_scans),
      queries);
  return 0;
}

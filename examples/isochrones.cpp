// Isochrones: the classic one-to-all application behind "how far can I get
// in X minutes?" maps. PHAST computes the full distance tree from a depot;
// we bucket vertices into travel-time bands and report how the reachable
// set grows — for several depots, reusing one workspace.
//
// Run:  ./isochrones [--width=96 --height=96 --depots=4 --bands=8]
#include <cstdio>
#include <vector>

#include "ch/contraction.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace phast;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  CountryParams params;
  params.width = static_cast<uint32_t>(cli.GetInt("width", 96));
  params.height = static_cast<uint32_t>(cli.GetInt("height", 96));
  const size_t depots = static_cast<size_t>(cli.GetInt("depots", 4));
  const size_t bands = static_cast<size_t>(cli.GetInt("bands", 8));

  const GeneratedGraph generated = GenerateCountry(params);
  const SubgraphResult scc =
      LargestStronglyConnectedComponent(generated.edges);
  const Graph graph = Graph::FromEdgeList(scc.edges);
  const VertexId n = graph.NumVertices();
  std::printf("network: %u vertices, %zu arcs\n", n, graph.NumArcs());

  const CHData ch = BuildContractionHierarchy(graph);
  const Phast engine(ch);
  Phast::Workspace workspace = engine.MakeWorkspace();

  Rng rng(42);
  for (size_t d = 0; d < depots; ++d) {
    const VertexId depot = static_cast<VertexId>(rng.NextBounded(n));
    Timer timer;
    engine.ComputeTree(depot, workspace);
    const double tree_ms = timer.ElapsedMs();

    // Band width: max finite distance divided into `bands` rings.
    Weight max_dist = 0;
    for (VertexId v = 0; v < n; ++v) {
      const Weight dist = engine.Distance(workspace, v);
      if (dist != kInfWeight) max_dist = std::max(max_dist, dist);
    }
    const Weight band_width = std::max<Weight>(1, max_dist / static_cast<Weight>(bands));

    std::vector<uint64_t> ring(bands, 0);
    for (VertexId v = 0; v < n; ++v) {
      const Weight dist = engine.Distance(workspace, v);
      if (dist == kInfWeight) continue;
      ring[std::min(bands - 1, static_cast<size_t>(dist / band_width))]++;
    }

    std::printf("\ndepot %u (tree in %.2f ms), ring width %u:\n", depot,
                tree_ms, band_width);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < bands; ++b) {
      cumulative += ring[b];
      std::printf("  <= %8u: %7llu vertices (%5.1f%% cumulative)\n",
                  static_cast<Weight>((b + 1) * band_width),
                  static_cast<unsigned long long>(ring[b]),
                  100.0 * static_cast<double>(cumulative) /
                      static_cast<double>(n));
    }
  }
  return 0;
}

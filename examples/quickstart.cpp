// Quickstart: the complete PHAST workflow in ~60 lines.
//
//   1. Get a road network (here: generated; swap in a DIMACS file with
//      ReadDimacsGraphFile) and keep its largest strongly connected
//      component.
//   2. Preprocess once: BuildContractionHierarchy.
//   3. Build a Phast engine and compute shortest path trees from any
//      source in milliseconds.
//
// Run:  ./quickstart [--width=64 --height=64]
#include <cstdio>

#include "ch/contraction.h"
#include "ch/query.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "phast/phast.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace phast;

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);

  // 1. A synthetic country: grid roads plus a highway hierarchy.
  CountryParams params;
  params.width = static_cast<uint32_t>(cli.GetInt("width", 64));
  params.height = static_cast<uint32_t>(cli.GetInt("height", 64));
  const GeneratedGraph generated = GenerateCountry(params);
  const SubgraphResult scc =
      LargestStronglyConnectedComponent(generated.edges);
  const Graph graph = Graph::FromEdgeList(scc.edges);
  std::printf("road network: %u vertices, %zu arcs\n", graph.NumVertices(),
              graph.NumArcs());

  // 2. One-time preprocessing.
  Timer prep_timer;
  CHStats stats;
  const CHData ch = BuildContractionHierarchy(graph, CHParams{}, &stats);
  std::printf("CH preprocessing: %.2fs, %zu shortcuts, %u levels\n",
              prep_timer.ElapsedSec(), ch.num_shortcuts, ch.NumLevels());

  // 3. Shortest path trees with PHAST.
  const Phast engine(ch);
  Phast::Workspace workspace = engine.MakeWorkspace();
  const VertexId source = 0;
  Timer tree_timer;
  engine.ComputeTree(source, workspace);
  std::printf("one full shortest path tree from vertex %u: %.2f ms\n", source,
              tree_timer.ElapsedMs());

  // Read off a few distances.
  for (const VertexId v :
       {graph.NumVertices() / 4, graph.NumVertices() / 2,
        graph.NumVertices() - 1}) {
    std::printf("  dist(%u -> %u) = %u\n", source, v,
                engine.Distance(workspace, v));
  }

  // Bonus: point-to-point queries with a path via plain CH.
  CHQuery query(ch);
  const VertexId target = graph.NumVertices() - 1;
  const PointToPointResult r = query.Query(source, target);
  std::printf("point-to-point %u -> %u: dist %u, %zu vertices on path\n",
              source, target, r.dist, r.path.size());
  return 0;
}
